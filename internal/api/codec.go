// Hand-rolled JSON codec for the serving hot paths (POST /predict,
// /predict/batch, /observe): append-style encoders writing straight from
// the domain objects into pooled buffers, and a minimal non-reflective
// parser for the small request payloads. Everything else (reports, health,
// accuracy listings) stays on reflection-based encoding/json — those
// routes are cold and stdlib is the clearer choice there.
//
// The encoders emit exactly the wire shape of the PredictResponse /
// ObserveResponse / BatchPredictResponse structs (same keys, same
// omitempty behavior, nil slices as null), so clients decoding with
// encoding/json see no difference. The parser handles the flat objects the
// hot requests actually are; any construct it does not support (escape
// sequences, nesting in unknown fields it cannot skip, syntax errors)
// makes it return an error and the handler falls back to encoding/json,
// so correctness never depends on the fast path.
package api

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"prodpred/internal/calib"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
)

// bufPool recycles request/response byte buffers across requests. Buffers
// above poolBufCap are dropped rather than pooled so one giant batch does
// not pin memory forever.
var bufPool = sync.Pool{New: func() any { return &poolBuf{b: make([]byte, 0, 4096)} }}

const poolBufCap = 1 << 20

type poolBuf struct{ b []byte }

func getBuf() *poolBuf {
	pb := bufPool.Get().(*poolBuf)
	pb.b = pb.b[:0]
	return pb
}

func (pb *poolBuf) release() {
	if cap(pb.b) <= poolBufCap {
		bufPool.Put(pb)
	}
}

// ---------------------------------------------------------------------------
// Encoding

// appendString appends a JSON string literal, escaping quotes, backslashes,
// and control characters (the platform names and error messages this layer
// emits are ASCII; multi-byte runes pass through untouched, which is valid
// JSON).
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

// appendFloat appends a JSON number. Non-finite values (which encoding/json
// rejects outright) are clamped to 0 so the exposition stays parseable; the
// pipeline never produces them.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

func appendGaps(b []byte, g nws.GapStats) []byte {
	b = append(b, `{"clean":`...)
	b = strconv.AppendInt(b, int64(g.Clean), 10)
	b = append(b, `,"recovered":`...)
	b = strconv.AppendInt(b, int64(g.Recovered), 10)
	b = append(b, `,"retries":`...)
	b = strconv.AppendInt(b, int64(g.Retries), 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendInt(b, int64(g.Dropped), 10)
	b = append(b, `,"outage":`...)
	b = strconv.AppendInt(b, int64(g.Outage), 10)
	b = append(b, `,"transient_lost":`...)
	b = strconv.AppendInt(b, int64(g.TransientLost), 10)
	b = append(b, `,"sensor_errors":`...)
	b = strconv.AppendInt(b, int64(g.SensorErrors), 10)
	b = append(b, `,"missed":`...)
	b = strconv.AppendInt(b, int64(g.Missed), 10)
	b = append(b, `,"longest_gap":`...)
	b = strconv.AppendInt(b, int64(g.LongestGap), 10)
	return append(b, '}')
}

func appendLoad(b []byte, r predict.MachineReport) []byte {
	b = append(b, `{"machine":`...)
	b = strconv.AppendInt(b, int64(r.Machine), 10)
	b = append(b, `,"mean":`...)
	b = appendFloat(b, r.Load.Mean)
	b = append(b, `,"spread":`...)
	b = appendFloat(b, r.Load.Spread)
	b = append(b, `,"raw":`...)
	b = appendFloat(b, r.Raw)
	b = append(b, `,"staleness":`...)
	b = appendFloat(b, r.Staleness)
	b = append(b, `,"widening":`...)
	b = appendFloat(b, r.Widening)
	b = append(b, `,"gaps":`...)
	b = appendGaps(b, r.Gaps)
	return append(b, '}')
}

// appendPrediction encodes one prediction as the PredictResponse wire
// shape, straight from the domain object — no intermediate wire struct, no
// reflection, no per-field allocation.
func appendPrediction(b []byte, platform string, p *predict.Prediction) []byte {
	lo, hi := p.Value.Interval()
	b = append(b, `{"platform":`...)
	b = appendString(b, platform)
	b = append(b, `,"time":`...)
	b = appendFloat(b, p.Time)
	b = append(b, `,"id":`...)
	b = strconv.AppendUint(b, p.ID, 10)
	b = append(b, `,"mean":`...)
	b = appendFloat(b, p.Value.Mean)
	b = append(b, `,"spread":`...)
	b = appendFloat(b, p.Value.Spread)
	b = append(b, `,"lo":`...)
	b = appendFloat(b, lo)
	b = append(b, `,"hi":`...)
	b = appendFloat(b, hi)
	b = append(b, `,"raw_spread":`...)
	b = appendFloat(b, p.Raw.Spread)
	b = append(b, `,"calibration_scale":`...)
	b = appendFloat(b, p.CalibrationScale)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, p.Degraded())
	b = append(b, `,"partition_rows":`...)
	if p.Partition == nil || p.Partition.Rows == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, r := range p.Partition.Rows {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(r), 10)
		}
		b = append(b, ']')
	}
	b = append(b, `,"loads":`...)
	if p.Loads == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range p.Loads {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendLoad(b, p.Loads[i])
		}
		b = append(b, ']')
	}
	b = append(b, `,"bw_mean":`...)
	b = appendFloat(b, p.Bandwidth.Mean)
	b = append(b, `,"bw_spread":`...)
	b = appendFloat(b, p.Bandwidth.Spread)
	b = append(b, `,"bw_gaps":`...)
	b = appendGaps(b, p.BWGaps)
	return append(b, '}')
}

// appendAccuracy encodes a calibration snapshot as the AccuracyJSON wire
// shape (drifts omitted when empty, matching omitempty).
func appendAccuracy(b []byte, s calib.Snapshot) []byte {
	b = append(b, `{"observed":`...)
	b = strconv.AppendInt(b, int64(s.Observed), 10)
	b = append(b, `,"window_fill":`...)
	b = strconv.AppendInt(b, int64(s.WindowFill), 10)
	b = append(b, `,"raw_capture":`...)
	b = appendFloat(b, s.RawCapture)
	b = append(b, `,"calibrated_capture":`...)
	b = appendFloat(b, s.CalibratedCapture)
	b = append(b, `,"cum_raw_capture":`...)
	b = appendFloat(b, s.CumRawCapture)
	b = append(b, `,"cum_calibrated_capture":`...)
	b = appendFloat(b, s.CumCalibratedCapture)
	b = append(b, `,"mean_signed_rel_err":`...)
	b = appendFloat(b, s.MeanSignedRelErr)
	b = append(b, `,"mean_abs_rel_err":`...)
	b = appendFloat(b, s.MeanAbsRelErr)
	b = append(b, `,"mean_raw_width":`...)
	b = appendFloat(b, s.MeanRawWidth)
	b = append(b, `,"mean_calibrated_width":`...)
	b = appendFloat(b, s.MeanCalibratedWidth)
	b = append(b, `,"scale":`...)
	b = appendFloat(b, s.Scale)
	b = append(b, `,"target":`...)
	b = appendFloat(b, s.Target)
	b = append(b, `,"since_reset":`...)
	b = strconv.AppendInt(b, int64(s.SinceReset), 10)
	if len(s.Drifts) > 0 {
		b = append(b, `,"drifts":[`...)
		for i, d := range s.Drifts {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"time":`...)
			b = appendFloat(b, d.Time)
			b = append(b, `,"seq":`...)
			b = strconv.AppendInt(b, int64(d.Seq), 10)
			b = append(b, `,"reason":`...)
			b = appendString(b, d.Reason)
			b = append(b, `,"stat":`...)
			b = appendFloat(b, d.Stat)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"last_time":`...)
	b = appendFloat(b, s.LastTime)
	return append(b, '}')
}

// appendObserve encodes the ObserveResponse wire shape.
func appendObserve(b []byte, platform string, s calib.Snapshot) []byte {
	b = append(b, `{"platform":`...)
	b = appendString(b, platform)
	b = append(b, `,"accuracy":`...)
	b = appendAccuracy(b, s)
	return append(b, '}')
}

// appendErrorObj encodes the {"error":"..."} payload every failure path
// returns.
func appendErrorObj(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = appendString(b, msg)
	return append(b, '}')
}

// ---------------------------------------------------------------------------
// Decoding

// errFallback tells the handler to re-parse with encoding/json: the payload
// uses something the fast parser does not support, or is malformed (stdlib
// then produces the user-visible error).
var errFallback = fmt.Errorf("api: fast JSON parser fallback")

// parser is a minimal JSON reader over a complete request body.
type parser struct {
	data []byte
	pos  int
}

func (p *parser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.data) || p.data[p.pos] != c {
		return errFallback
	}
	p.pos++
	return nil
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *parser) peek() byte {
	p.skipWS()
	if p.pos >= len(p.data) {
		return 0
	}
	return p.data[p.pos]
}

// rawString reads a string literal without escape support, returning the
// raw bytes between the quotes. A backslash forces the stdlib fallback.
func (p *parser) rawString() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '\\':
			return nil, errFallback
		case '"':
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		default:
			p.pos++
		}
	}
	return nil, errFallback
}

// number reads a JSON number as float64.
func (p *parser) number() (float64, error) {
	p.skipWS()
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, errFallback
	}
	v, err := strconv.ParseFloat(string(p.data[start:p.pos]), 64)
	if err != nil {
		return 0, errFallback
	}
	return v, nil
}

// integer reads a JSON number in plain integer syntax. Exponent or
// fraction forms (1e2, 3.0) force the fallback — encoding/json rejects
// them for int fields, and the fast path must never accept what stdlib
// would refuse.
func (p *parser) integer() (int64, error) {
	p.skipWS()
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	digits := p.pos
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == digits {
		return 0, errFallback
	}
	if p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '.', 'e', 'E', '+':
			return 0, errFallback
		}
	}
	v, err := strconv.ParseInt(string(p.data[start:p.pos]), 10, 64)
	if err != nil {
		return 0, errFallback
	}
	return v, nil
}

// skipValue consumes one value of any type (for unknown keys).
func (p *parser) skipValue() error {
	p.skipWS()
	if p.pos >= len(p.data) {
		return errFallback
	}
	switch c := p.data[p.pos]; c {
	case '"':
		_, err := p.rawString()
		return err
	case '{', '[':
		open, close := c, byte('}')
		if c == '[' {
			close = ']'
		}
		depth := 0
		inStr := false
		for ; p.pos < len(p.data); p.pos++ {
			b := p.data[p.pos]
			if inStr {
				if b == '\\' {
					p.pos++
				} else if b == '"' {
					inStr = false
				}
				continue
			}
			switch b {
			case '"':
				inStr = true
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					p.pos++
					return nil
				}
			}
		}
		return errFallback
	default: // number, true, false, null
		for p.pos < len(p.data) {
			switch p.data[p.pos] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return nil
			}
			p.pos++
		}
		return nil
	}
}

// object walks one JSON object, calling field for every key. field returns
// an error to abort (usually errFallback); unknown keys are skipped.
func (p *parser) object(field func(key []byte) error) error {
	if err := p.expect('{'); err != nil {
		return err
	}
	if p.peek() == '}' {
		p.pos++
		return nil
	}
	for {
		key, err := p.rawString()
		if err != nil {
			return err
		}
		if err := p.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return errFallback
		}
	}
}

// end verifies nothing but whitespace remains.
func (p *parser) end() error {
	p.skipWS()
	if p.pos != len(p.data) {
		return errFallback
	}
	return nil
}

// predictRequestFields parses one PredictRequest object body in place.
func (p *parser) predictRequestFields(pr *PredictRequest) error {
	return p.object(func(key []byte) error {
		switch string(key) {
		case "platform":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.Platform = string(s)
		case "n":
			v, err := p.integer()
			if err != nil {
				return err
			}
			pr.N = int(v)
		case "iterations":
			v, err := p.integer()
			if err != nil {
				return err
			}
			pr.Iterations = int(v)
		case "strategy":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.Strategy = string(s)
		case "max_strategy":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.MaxStrategy = string(s)
		case "iteration_rel":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.IterationRel = string(s)
		case "advance":
			v, err := p.number()
			if err != nil {
				return err
			}
			pr.Advance = v
		default:
			return p.skipValue()
		}
		return nil
	})
}

// parsePredictRequest is the fast path for the POST /predict body.
func parsePredictRequest(data []byte) (PredictRequest, error) {
	var pr PredictRequest
	p := parser{data: data}
	if err := p.predictRequestFields(&pr); err != nil {
		return pr, err
	}
	return pr, p.end()
}

// parseObserveRequest is the fast path for the POST /observe body.
func parseObserveRequest(data []byte) (ObserveRequest, error) {
	var or ObserveRequest
	p := parser{data: data}
	err := p.object(func(key []byte) error {
		switch string(key) {
		case "platform":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			or.Platform = string(s)
		case "id":
			v, err := p.integer()
			if err != nil || v < 0 {
				return errFallback
			}
			or.ID = uint64(v)
		case "actual":
			v, err := p.number()
			if err != nil {
				return err
			}
			or.Actual = v
		default:
			return p.skipValue()
		}
		return nil
	})
	if err != nil {
		return or, err
	}
	return or, p.end()
}

// parseBatchRequest is the fast path for the POST /predict/batch body:
// {"requests":[{...},{...}]}.
func parseBatchRequest(data []byte) ([]PredictRequest, error) {
	var reqs []PredictRequest
	p := parser{data: data}
	err := p.object(func(key []byte) error {
		if string(key) != "requests" {
			return p.skipValue()
		}
		if p.peek() == 'n' { // null
			return p.skipValue()
		}
		if err := p.expect('['); err != nil {
			return err
		}
		reqs = []PredictRequest{} // "[]" decodes empty, not nil, like stdlib
		if p.peek() == ']' {
			p.pos++
			return nil
		}
		for {
			var pr PredictRequest
			if err := p.predictRequestFields(&pr); err != nil {
				return err
			}
			reqs = append(reqs, pr)
			switch p.peek() {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return errFallback
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return reqs, p.end()
}
