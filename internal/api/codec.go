// Hand-rolled JSON codec for the serving hot paths (POST /predict,
// /predict/batch, /observe): append-style encoders writing straight from
// the domain objects into pooled buffers, and a minimal non-reflective
// parser for the small request payloads. Everything else (reports, health,
// accuracy listings) stays on reflection-based encoding/json — those
// routes are cold and stdlib is the clearer choice there.
//
// The encoders emit exactly the wire shape of the PredictResponse /
// ObserveResponse / BatchPredictResponse structs (same keys, same
// omitempty behavior, nil slices as null), so clients decoding with
// encoding/json see no difference. The parser handles the flat objects the
// hot requests actually are; any construct it does not support (escape
// sequences, nesting in unknown fields it cannot skip, syntax errors)
// makes it return an error and the handler falls back to encoding/json,
// so correctness never depends on the fast path.
package api

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"prodpred/internal/calib"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
)

// bufPool recycles request/response byte buffers across requests. Buffers
// above poolBufCap are dropped rather than pooled so one giant batch does
// not pin memory forever.
var bufPool = sync.Pool{New: func() any { return &poolBuf{b: make([]byte, 0, 4096)} }}

const poolBufCap = 1 << 20

type poolBuf struct{ b []byte }

func getBuf() *poolBuf {
	pb := bufPool.Get().(*poolBuf)
	pb.b = pb.b[:0]
	return pb
}

func (pb *poolBuf) release() {
	if cap(pb.b) <= poolBufCap {
		bufPool.Put(pb)
	}
}

// ---------------------------------------------------------------------------
// Encoding

// appendString appends a JSON string literal, escaping quotes, backslashes,
// and control characters (the platform names and error messages this layer
// emits are ASCII; multi-byte runes pass through untouched, which is valid
// JSON).
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

// appendFloat appends a JSON number. Non-finite values (which encoding/json
// rejects outright) are clamped to 0 so the exposition stays parseable; the
// pipeline never produces them.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendFloats appends a []float64 the way encoding/json does: null when
// nil, a JSON array otherwise.
func appendFloats(b []byte, vs []float64) []byte {
	if vs == nil {
		return append(b, "null"...)
	}
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFloat(b, v)
	}
	return append(b, ']')
}

func appendGaps(b []byte, g nws.GapStats) []byte {
	b = append(b, `{"clean":`...)
	b = strconv.AppendInt(b, int64(g.Clean), 10)
	b = append(b, `,"recovered":`...)
	b = strconv.AppendInt(b, int64(g.Recovered), 10)
	b = append(b, `,"retries":`...)
	b = strconv.AppendInt(b, int64(g.Retries), 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendInt(b, int64(g.Dropped), 10)
	b = append(b, `,"outage":`...)
	b = strconv.AppendInt(b, int64(g.Outage), 10)
	b = append(b, `,"transient_lost":`...)
	b = strconv.AppendInt(b, int64(g.TransientLost), 10)
	b = append(b, `,"sensor_errors":`...)
	b = strconv.AppendInt(b, int64(g.SensorErrors), 10)
	b = append(b, `,"missed":`...)
	b = strconv.AppendInt(b, int64(g.Missed), 10)
	b = append(b, `,"longest_gap":`...)
	b = strconv.AppendInt(b, int64(g.LongestGap), 10)
	return append(b, '}')
}

func appendLoad(b []byte, r predict.MachineReport) []byte {
	b = append(b, `{"machine":`...)
	b = strconv.AppendInt(b, int64(r.Machine), 10)
	b = append(b, `,"mean":`...)
	b = appendFloat(b, r.Load.Mean)
	b = append(b, `,"spread":`...)
	b = appendFloat(b, r.Load.Spread)
	b = append(b, `,"raw":`...)
	b = appendFloat(b, r.Raw)
	b = append(b, `,"staleness":`...)
	b = appendFloat(b, r.Staleness)
	b = append(b, `,"widening":`...)
	b = appendFloat(b, r.Widening)
	b = append(b, `,"gaps":`...)
	b = appendGaps(b, r.Gaps)
	b = append(b, `,"forecaster":`...)
	b = appendString(b, r.Forecaster)
	if len(r.Components) > 0 { // omitempty
		b = append(b, `,"components":[`...)
		for i, c := range r.Components {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"weight":`...)
			b = appendFloat(b, c.Weight)
			b = append(b, `,"mean":`...)
			b = appendFloat(b, c.Mean)
			b = append(b, `,"sigma":`...)
			b = appendFloat(b, c.Sigma)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendPrediction encodes one prediction as the PredictResponse wire
// shape, straight from the domain object — no intermediate wire struct, no
// reflection, no per-field allocation.
func appendPrediction(b []byte, platform string, p *predict.Prediction) []byte {
	lo, hi := p.Value.Interval()
	b = append(b, `{"platform":`...)
	b = appendString(b, platform)
	b = append(b, `,"time":`...)
	b = appendFloat(b, p.Time)
	b = append(b, `,"id":`...)
	b = strconv.AppendUint(b, p.ID, 10)
	b = append(b, `,"mean":`...)
	b = appendFloat(b, p.Value.Mean)
	b = append(b, `,"spread":`...)
	b = appendFloat(b, p.Value.Spread)
	b = append(b, `,"lo":`...)
	b = appendFloat(b, lo)
	b = append(b, `,"hi":`...)
	b = appendFloat(b, hi)
	b = append(b, `,"raw_spread":`...)
	b = appendFloat(b, p.Raw.Spread)
	b = append(b, `,"calibration_scale":`...)
	b = appendFloat(b, p.CalibrationScale)
	b = append(b, `,"degraded":`...)
	b = appendBool(b, p.Degraded())
	b = append(b, `,"partition_rows":`...)
	if p.Partition == nil || p.Partition.Rows == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, r := range p.Partition.Rows {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(r), 10)
		}
		b = append(b, ']')
	}
	b = append(b, `,"loads":`...)
	if p.Loads == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range p.Loads {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendLoad(b, p.Loads[i])
		}
		b = append(b, ']')
	}
	b = append(b, `,"bw_mean":`...)
	b = appendFloat(b, p.Bandwidth.Mean)
	b = append(b, `,"bw_spread":`...)
	b = appendFloat(b, p.Bandwidth.Spread)
	b = append(b, `,"bw_gaps":`...)
	b = appendGaps(b, p.BWGaps)
	if len(p.Dist.Calibrated) > 0 { // omitempty: nil *DistJSON on the wire struct
		b = append(b, `,"dist":{"levels":`...)
		b = appendFloats(b, p.Dist.Levels)
		b = append(b, `,"raw":`...)
		b = appendFloats(b, p.Dist.Raw)
		b = append(b, `,"calibrated":`...)
		b = appendFloats(b, p.Dist.Calibrated)
		b = append(b, `,"forecaster":`...)
		b = appendString(b, p.Dist.Forecaster)
		if len(p.Dist.Intervals) > 0 {
			b = append(b, `,"intervals":[`...)
			for i, iv := range p.Dist.Intervals {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"level":`...)
				b = appendFloat(b, iv.Level)
				b = append(b, `,"lo":`...)
				b = appendFloat(b, iv.Lo)
				b = append(b, `,"hi":`...)
				b = appendFloat(b, iv.Hi)
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendAccuracy encodes a calibration snapshot as the AccuracyJSON wire
// shape (drifts omitted when empty, matching omitempty).
func appendAccuracy(b []byte, s calib.Snapshot) []byte {
	b = append(b, `{"observed":`...)
	b = strconv.AppendInt(b, int64(s.Observed), 10)
	b = append(b, `,"window_fill":`...)
	b = strconv.AppendInt(b, int64(s.WindowFill), 10)
	b = append(b, `,"raw_capture":`...)
	b = appendFloat(b, s.RawCapture)
	b = append(b, `,"calibrated_capture":`...)
	b = appendFloat(b, s.CalibratedCapture)
	b = append(b, `,"cum_raw_capture":`...)
	b = appendFloat(b, s.CumRawCapture)
	b = append(b, `,"cum_calibrated_capture":`...)
	b = appendFloat(b, s.CumCalibratedCapture)
	b = append(b, `,"mean_signed_rel_err":`...)
	b = appendFloat(b, s.MeanSignedRelErr)
	b = append(b, `,"mean_abs_rel_err":`...)
	b = appendFloat(b, s.MeanAbsRelErr)
	b = append(b, `,"mean_raw_width":`...)
	b = appendFloat(b, s.MeanRawWidth)
	b = append(b, `,"mean_calibrated_width":`...)
	b = appendFloat(b, s.MeanCalibratedWidth)
	b = append(b, `,"scale":`...)
	b = appendFloat(b, s.Scale)
	b = append(b, `,"target":`...)
	b = appendFloat(b, s.Target)
	b = append(b, `,"since_reset":`...)
	b = strconv.AppendInt(b, int64(s.SinceReset), 10)
	if len(s.Drifts) > 0 {
		b = append(b, `,"drifts":[`...)
		for i, d := range s.Drifts {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"time":`...)
			b = appendFloat(b, d.Time)
			b = append(b, `,"seq":`...)
			b = strconv.AppendInt(b, int64(d.Seq), 10)
			b = append(b, `,"reason":`...)
			b = appendString(b, d.Reason)
			b = append(b, `,"stat":`...)
			b = appendFloat(b, d.Stat)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"last_time":`...)
	b = appendFloat(b, s.LastTime)
	if len(s.QuantileLevels) > 0 { // the quantile slices share omitempty
		b = append(b, `,"quantile_levels":`...)
		b = appendFloats(b, s.QuantileLevels)
	}
	if len(s.QuantileScaleLo) > 0 {
		b = append(b, `,"quantile_scale_lo":`...)
		b = appendFloats(b, s.QuantileScaleLo)
	}
	if len(s.QuantileScaleHi) > 0 {
		b = append(b, `,"quantile_scale_hi":`...)
		b = appendFloats(b, s.QuantileScaleHi)
	}
	b = append(b, `,"quantile_shift":`...)
	b = appendFloat(b, s.QuantileShift)
	b = append(b, `,"mean_pit":`...)
	b = appendFloat(b, s.MeanPIT)
	b = append(b, `,"pit_count":`...)
	b = strconv.AppendInt(b, int64(s.PITCount), 10)
	return append(b, '}')
}

// appendObserve encodes the ObserveResponse wire shape.
func appendObserve(b []byte, platform string, s calib.Snapshot) []byte {
	b = append(b, `{"platform":`...)
	b = appendString(b, platform)
	b = append(b, `,"accuracy":`...)
	b = appendAccuracy(b, s)
	return append(b, '}')
}

// appendErrorObj encodes the {"error":"..."} payload every failure path
// returns.
func appendErrorObj(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = appendString(b, msg)
	return append(b, '}')
}

// ---------------------------------------------------------------------------
// Decoding

// errFallback tells the handler to re-parse with encoding/json: the payload
// uses something the fast parser does not support, or is malformed (stdlib
// then produces the user-visible error).
var errFallback = fmt.Errorf("api: fast JSON parser fallback")

// parser is a minimal JSON reader over a complete request body. Its
// acceptance contract is one-sided strictness: every body the fast path
// accepts must decode to exactly what encoding/json produces, and every
// construct where the two could diverge (escapes, non-ASCII or control
// bytes in strings, lax number forms, deep nesting, duplicate keys with
// merge semantics) forces errFallback instead. FuzzCodecParsers holds the
// parsers to that contract.
type parser struct {
	data []byte
	pos  int
	// scratch backs the ASCII case-folding of object keys, so matching a
	// case-variant key (which encoding/json accepts) does not allocate.
	scratch [48]byte
}

func (p *parser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.data) || p.data[p.pos] != c {
		return errFallback
	}
	p.pos++
	return nil
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *parser) peek() byte {
	p.skipWS()
	if p.pos >= len(p.data) {
		return 0
	}
	return p.data[p.pos]
}

// rawString reads a string literal without escape support, returning the
// raw bytes between the quotes. A backslash, a control byte (stdlib syntax
// error), or a non-ASCII byte (stdlib replaces invalid UTF-8 rather than
// erroring, so byte-for-byte agreement needs real decoding) forces the
// stdlib fallback.
func (p *parser) rawString() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '\\':
			return nil, errFallback
		case c == '"':
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		case c < 0x20 || c >= 0x80:
			return nil, errFallback
		default:
			p.pos++
		}
	}
	return nil, errFallback
}

// boundary reports whether the value ending at the current position sits on
// a legal JSON token boundary (EOF, whitespace, or a structural byte).
func (p *parser) boundary() bool {
	if p.pos >= len(p.data) {
		return true
	}
	switch p.data[p.pos] {
	case ',', '}', ']', ':', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}

// scanNumber consumes one number token in the exact JSON grammar — no
// leading '+', no leading zeros, no bare '.', digits required after '.' and
// the exponent sign. strconv.ParseFloat is laxer on all of those, so the
// grammar is checked here rather than delegated.
func (p *parser) scanNumber() ([]byte, error) {
	p.skipWS()
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos >= len(p.data):
		return nil, errFallback
	case p.data[p.pos] == '0':
		p.pos++
	case p.data[p.pos] >= '1' && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, errFallback
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		digits := p.pos
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == digits {
			return nil, errFallback
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		digits := p.pos
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == digits {
			return nil, errFallback
		}
	}
	if !p.boundary() {
		return nil, errFallback
	}
	return p.data[start:p.pos], nil
}

// number reads a JSON number as float64.
func (p *parser) number() (float64, error) {
	tok, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, errFallback
	}
	return v, nil
}

// integer reads a JSON number in plain integer syntax. Exponent or
// fraction forms (1e2, 3.0) force the fallback — encoding/json rejects
// them for int fields, and the fast path must never accept what stdlib
// would refuse.
func (p *parser) integer() (int64, error) {
	tok, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	for _, c := range tok {
		if c == '.' || c == 'e' || c == 'E' {
			return 0, errFallback
		}
	}
	v, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return 0, errFallback
	}
	return v, nil
}

// literal consumes one exact keyword token (true/false/null).
func (p *parser) literal(lit string) error {
	p.skipWS()
	if len(p.data)-p.pos < len(lit) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return errFallback
	}
	p.pos += len(lit)
	if !p.boundary() {
		return errFallback
	}
	return nil
}

// floats reads a JSON array of numbers with stdlib decode semantics: null
// yields nil, [] yields an empty non-nil slice.
func (p *parser) floats() ([]float64, error) {
	if p.peek() == 'n' {
		if err := p.literal("null"); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if err := p.expect('['); err != nil {
		return nil, err
	}
	out := []float64{}
	if p.peek() == ']' {
		p.pos++
		return out, nil
	}
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return out, nil
		default:
			return nil, errFallback
		}
	}
}

// maxSkipDepth bounds nesting inside skipped unknown values. Deeper bodies
// fall back to encoding/json (which allows far deeper nesting before its
// own limit), keeping fast-accept a subset of stdlib-accept without an
// unbounded recursion here.
const maxSkipDepth = 32

// skipValue consumes one value of any type (for unknown keys), validating
// the full JSON grammar as it goes — the fast path must never accept a
// body whose unknown corners stdlib would reject.
func (p *parser) skipValue() error { return p.skipValueDepth(0) }

func (p *parser) skipValueDepth(depth int) error {
	if depth > maxSkipDepth {
		return errFallback
	}
	switch p.peek() {
	case '"':
		_, err := p.rawString()
		return err
	case 't':
		return p.literal("true")
	case 'f':
		return p.literal("false")
	case 'n':
		return p.literal("null")
	case '{':
		p.pos++
		if p.peek() == '}' {
			p.pos++
			return nil
		}
		for {
			if _, err := p.rawString(); err != nil {
				return err
			}
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.skipValueDepth(depth + 1); err != nil {
				return err
			}
			switch p.peek() {
			case ',':
				p.pos++
			case '}':
				p.pos++
				return nil
			default:
				return errFallback
			}
		}
	case '[':
		p.pos++
		if p.peek() == ']' {
			p.pos++
			return nil
		}
		for {
			if err := p.skipValueDepth(depth + 1); err != nil {
				return err
			}
			switch p.peek() {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return errFallback
			}
		}
	case 0:
		return errFallback
	default:
		_, err := p.scanNumber()
		return err
	}
}

// foldKey lowercases an ASCII key into the parser's scratch buffer:
// encoding/json matches object keys to field names case-insensitively, so
// the field switches below match on the folded form. Keys are ASCII by
// construction (rawString falls back on anything else), which makes ASCII
// folding equivalent to stdlib's unicode fold. Oversized keys can't name a
// known field and pass through unfolded to the default (skip) arm.
func (p *parser) foldKey(key []byte) []byte {
	if len(key) > len(p.scratch) {
		return key
	}
	b := p.scratch[:len(key)]
	for i, c := range key {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return b
}

// object walks one JSON object, calling field for every key (ASCII
// case-folded, matching stdlib's case-insensitive field matching). field
// returns an error to abort (usually errFallback); unknown keys are
// skipped. Duplicate keys overwrite like stdlib, except where a field's
// stdlib decode merges into the prior value — those fields guard
// themselves.
func (p *parser) object(field func(key []byte) error) error {
	if err := p.expect('{'); err != nil {
		return err
	}
	if p.peek() == '}' {
		p.pos++
		return nil
	}
	for {
		key, err := p.rawString()
		if err != nil {
			return err
		}
		if err := p.expect(':'); err != nil {
			return err
		}
		if err := field(p.foldKey(key)); err != nil {
			return err
		}
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return errFallback
		}
	}
}

// end verifies nothing but whitespace remains.
func (p *parser) end() error {
	p.skipWS()
	if p.pos != len(p.data) {
		return errFallback
	}
	return nil
}

// predictRequestFields parses one PredictRequest object body in place.
func (p *parser) predictRequestFields(pr *PredictRequest) error {
	return p.object(func(key []byte) error {
		switch string(key) {
		case "platform":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.Platform = string(s)
		case "n":
			v, err := p.integer()
			if err != nil {
				return err
			}
			pr.N = int(v)
		case "iterations":
			v, err := p.integer()
			if err != nil {
				return err
			}
			pr.Iterations = int(v)
		case "strategy":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.Strategy = string(s)
		case "max_strategy":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.MaxStrategy = string(s)
		case "iteration_rel":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			pr.IterationRel = string(s)
		case "advance":
			v, err := p.number()
			if err != nil {
				return err
			}
			pr.Advance = v
		case "level":
			v, err := p.number()
			if err != nil {
				return err
			}
			pr.Level = v
		case "levels":
			vs, err := p.floats()
			if err != nil {
				return err
			}
			pr.Levels = vs
		default:
			return p.skipValue()
		}
		return nil
	})
}

// parsePredictRequest is the fast path for the POST /predict body.
func parsePredictRequest(data []byte) (PredictRequest, error) {
	var pr PredictRequest
	p := parser{data: data}
	if err := p.predictRequestFields(&pr); err != nil {
		return pr, err
	}
	return pr, p.end()
}

// parseObserveRequest is the fast path for the POST /observe body.
func parseObserveRequest(data []byte) (ObserveRequest, error) {
	var or ObserveRequest
	p := parser{data: data}
	err := p.object(func(key []byte) error {
		switch string(key) {
		case "platform":
			s, err := p.rawString()
			if err != nil {
				return err
			}
			or.Platform = string(s)
		case "id":
			v, err := p.integer()
			if err != nil || v < 0 {
				return errFallback
			}
			or.ID = uint64(v)
		case "actual":
			v, err := p.number()
			if err != nil {
				return err
			}
			or.Actual = v
		default:
			return p.skipValue()
		}
		return nil
	})
	if err != nil {
		return or, err
	}
	return or, p.end()
}

// parseBatchRequest is the fast path for the POST /predict/batch body:
// {"requests":[{...},{...}]}.
func parseBatchRequest(data []byte) ([]PredictRequest, error) {
	var reqs []PredictRequest
	p := parser{data: data}
	err := p.object(func(key []byte) error {
		if string(key) != "requests" {
			return p.skipValue()
		}
		if reqs != nil {
			// Duplicate key: stdlib would merge the second array into the
			// items already decoded, element by element — not worth mirroring.
			return errFallback
		}
		if p.peek() == 'n' {
			return p.literal("null") // leaves reqs nil, like stdlib
		}
		if err := p.expect('['); err != nil {
			return err
		}
		reqs = []PredictRequest{} // "[]" decodes empty, not nil, like stdlib
		if p.peek() == ']' {
			p.pos++
			return nil
		}
		for {
			var pr PredictRequest
			if err := p.predictRequestFields(&pr); err != nil {
				return err
			}
			reqs = append(reqs, pr)
			switch p.peek() {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return errFallback
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return reqs, p.end()
}
