// Package api is predictd's HTTP layer: JSON wire types, the route table,
// and the instrumented handler over a predict.Registry. It lives outside
// cmd/predictd so the load-test driver and the docs-drift checks can import
// the same routes and payload shapes the daemon serves.
//
// All handlers are safe for concurrent use (predict.Service serializes
// internally) and honor request-context cancellation: a handler that loses
// its client mid-walk stops without writing a response. Wrong-method hits
// on a registered path return 405 Method Not Allowed, not 404.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"time"

	"prodpred/internal/fleetsched"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// MetricUptime is the daemon-level uptime gauge, in wall-clock seconds
// since the handler was built.
const MetricUptime = "predictd_uptime_seconds"

// Route names one endpoint served by NewHandler: the mux pattern
// ("METHOD /path") and a one-line summary. The pattern doubles as the
// route label on the HTTP metrics and access log.
type Route struct {
	Pattern string
	Summary string
}

// Routes is the full endpoint catalog, in registration order. Every entry
// must be documented in OPERATIONS.md — internal/readmecheck fails on
// drift.
var Routes = []Route{
	{"POST /predict", "issue a stochastic runtime prediction"},
	{"POST /predict/batch", "issue many predictions in one round trip"},
	{"POST /observe", "feed a measured runtime back to the online calibrator"},
	{"GET /accuracy", "capture rates, calibration scale, and drift events"},
	{"GET /report", "per-machine monitor reports plus calibration state"},
	{"GET /healthz", "serving status plus per-fault-class gap counters"},
	{"POST /advance", "manually advance a platform's virtual clock"},
	{"POST /snapshot", "stream a binary snapshot of the full fleet state"},
	{"POST /schedule", "place SOR jobs across the fleet by predicted runtime distribution"},
	{"GET /schedule/status", "fleet-scheduler state: tenants, jobs, saturation"},
	{"GET /metrics", "Prometheus text exposition of the metric catalog"},
}

// PprofRoutes are registered only when Options.EnablePprof is set (the
// daemon's -pprof flag). The index page links the usual profiles.
var PprofRoutes = []Route{
	{"GET /debug/pprof/", "pprof profile index (opt-in)"},
}

// Options configures the optional observability surfaces of the handler.
// The zero value serves the JSON API with a private metrics registry (so
// GET /metrics always works), no access log, and no pprof.
type Options struct {
	// Metrics receives the HTTP-layer families and the uptime gauge; pass
	// the same registry the predict services were built with so one scrape
	// covers the whole catalog. Nil gets a fresh private registry.
	Metrics *obs.Registry
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Sched tunes the fleet scheduler behind POST /schedule (policy,
	// quantile, saturation thresholds). Its Metrics field is ignored: the
	// handler registers the fleetsched families on the same registry as
	// everything else.
	Sched fleetsched.Config
}

// server routes HTTP requests onto a predict.Registry and its fleet
// scheduler.
type server struct {
	reg   *predict.Registry
	sched *fleetsched.Scheduler
}

// NewHandler builds the daemon's HTTP handler over reg: every Routes entry
// wrapped in the metrics/logging middleware, plus pprof when enabled.
func NewHandler(reg *predict.Registry, opts Options) http.Handler {
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	start := time.Now()
	opts.Metrics.NewGaugeFunc(MetricUptime,
		"Wall-clock seconds since the HTTP handler was built.",
		func() float64 { return time.Since(start).Seconds() })

	mw := obs.NewHTTPMiddleware(opts.Metrics)
	mw.Log = opts.AccessLog
	mw.PlatformFrom = platformFrom

	schedCfg := opts.Sched
	schedCfg.Metrics = fleetsched.NewMetrics(opts.Metrics)
	s := &server{reg: reg, sched: fleetsched.New(reg, schedCfg)}
	handlers := map[string]http.Handler{
		"POST /predict":        http.HandlerFunc(s.handlePredict),
		"POST /predict/batch":  http.HandlerFunc(s.handleBatchPredict),
		"POST /observe":        http.HandlerFunc(s.handleObserve),
		"GET /accuracy":        http.HandlerFunc(s.handleAccuracy),
		"GET /report":          http.HandlerFunc(s.handleReport),
		"GET /healthz":         http.HandlerFunc(s.handleHealthz),
		"POST /advance":        http.HandlerFunc(s.handleAdvance),
		"POST /snapshot":       http.HandlerFunc(s.handleSnapshot),
		"POST /schedule":       http.HandlerFunc(s.handleSchedule),
		"GET /schedule/status": http.HandlerFunc(s.handleScheduleStatus),
		"GET /metrics":         opts.Metrics.Handler(),
	}
	mux := http.NewServeMux()
	for _, rt := range Routes {
		h, ok := handlers[rt.Pattern]
		if !ok {
			panic("api: route " + rt.Pattern + " has no handler")
		}
		mux.Handle(rt.Pattern, mw.Wrap(rt.Pattern, h))
	}
	if opts.EnablePprof {
		// The pprof index and its profile sub-pages; instrumented under one
		// route label so profile names don't blow up metric cardinality.
		mux.Handle("GET /debug/pprof/", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Index)))
		mux.Handle("GET /debug/pprof/profile", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Profile)))
		mux.Handle("GET /debug/pprof/trace", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Trace)))
		mux.Handle("GET /debug/pprof/symbol", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Symbol)))
		mux.Handle("GET /debug/pprof/cmdline", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Cmdline)))
	}
	return mux
}

// platformFrom extracts the platform a request targets, for the access
// log: the query parameter when present, else a peek at a JSON body (which
// is restored for the handler).
func platformFrom(r *http.Request) string {
	if p := r.URL.Query().Get("platform"); p != "" {
		return p
	}
	if r.Method == http.MethodGet || r.Body == nil {
		return ""
	}
	peeked, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return ""
	}
	r.Body = struct {
		io.Reader
		io.Closer
	}{io.MultiReader(bytes.NewReader(peeked), r.Body), r.Body}
	var peek struct {
		Platform string `json:"platform"`
	}
	_ = json.Unmarshal(peeked, &peek)
	return peek.Platform
}

// maxBodyBytes bounds a request body read into a pooled buffer.
const maxBodyBytes = 1 << 20

// queryLevels parses the ?level= / ?levels= query parameters into central
// interval levels: level takes one value, levels a comma-separated list,
// and both may repeat. Range validation ((0,1) exclusive) happens in the
// pipeline, which owns the error message.
func queryLevels(q url.Values) ([]float64, error) {
	var out []float64
	for _, s := range q["level"] {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad level %q", s)
		}
		out = append(out, v)
	}
	for _, s := range q["levels"] {
		for _, part := range strings.Split(s, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("bad levels entry %q", part)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// readBody reads the whole request body into pb, growing as needed.
func readBody(r *http.Request, pb *poolBuf) error {
	for {
		if len(pb.b) == cap(pb.b) {
			pb.b = append(pb.b, 0)[:len(pb.b)]
		}
		n, err := r.Body.Read(pb.b[len(pb.b):cap(pb.b)])
		pb.b = pb.b[:len(pb.b)+n]
		if len(pb.b) > maxBodyBytes {
			return fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// writeRaw sends a pre-encoded JSON payload.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	in := getBuf()
	defer in.release()
	if err := readBody(r, in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	pr, perr := parsePredictRequest(in.b)
	if perr != nil {
		// Fast parser bailed — let encoding/json either handle the exotic
		// payload or produce the user-visible syntax error.
		pr = PredictRequest{}
		if err := json.Unmarshal(in.b, &pr); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	req, err := pr.ToRequest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	qls, err := queryLevels(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.Levels = append(req.Levels, qls...)
	svc, err := s.reg.Lookup(pr.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if pr.Advance > 0 {
		if err := svc.Advance(pr.Advance); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	pred, err := svc.Predict(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := getBuf()
	defer out.release()
	out.b = appendPrediction(out.b, svc.Name(), &pred)
	writeRaw(w, http.StatusOK, out.b)
}

// handleBatchPredict answers POST /predict/batch: every item resolves
// against one frozen virtual tick per platform, repeated request shapes
// share a single pipeline evaluation, and the whole batch costs one
// request/response round trip. Items fail independently — the call itself
// fails only on a malformed envelope, an empty batch, or one above
// MaxBatchSize.
func (s *server) handleBatchPredict(w http.ResponseWriter, r *http.Request) {
	in := getBuf()
	defer in.release()
	if err := readBody(r, in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	items, perr := parseBatchRequest(in.b)
	if perr != nil {
		var br BatchPredictRequest
		if err := json.Unmarshal(in.b, &br); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		items = br.Requests
	}
	if len(items) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(items) > MaxBatchSize {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(items), MaxBatchSize))
		return
	}
	// Query-level interval levels apply to every item in the batch (each
	// item can still ask for its own via the level/levels body fields).
	qls, err := queryLevels(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Translate the wire items, remembering which ones are well-formed;
	// translation failures become positional errors, not a failed batch.
	reqs := make([]predict.Request, 0, len(items))
	valid := make([]int, 0, len(items))
	itemErrs := make([]error, len(items))
	for i, pr := range items {
		if pr.Advance != 0 {
			itemErrs[i] = fmt.Errorf("advance is not supported in a batch (tick-coherent by design)")
			continue
		}
		req, err := pr.ToRequest()
		if err != nil {
			itemErrs[i] = err
			continue
		}
		req.Levels = append(req.Levels, qls...)
		reqs = append(reqs, req)
		valid = append(valid, i)
	}
	preds, predErrs := s.reg.PredictBatch(reqs)
	predFor := make([]*predict.Prediction, len(items))
	for j, i := range valid {
		if predErrs[j] != nil {
			itemErrs[i] = predErrs[j]
		} else {
			predFor[i] = &preds[j]
		}
	}
	out := getBuf()
	defer out.release()
	out.b = append(out.b, `{"responses":[`...)
	errCount := 0
	for i := range items {
		if i > 0 {
			out.b = append(out.b, ',')
		}
		if itemErrs[i] != nil {
			errCount++
			out.b = appendErrorObj(out.b, itemErrs[i].Error())
			continue
		}
		name := items[i].Platform
		if svc, err := s.reg.Lookup(name); err == nil {
			name = svc.Name()
		}
		out.b = appendPrediction(out.b, name, predFor[i])
	}
	out.b = append(out.b, `],"errors":`...)
	out.b = strconv.AppendInt(out.b, int64(errCount), 10)
	out.b = append(out.b, '}')
	writeRaw(w, http.StatusOK, out.b)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	svc, err := s.reg.Lookup(r.URL.Query().Get("platform"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	resp := ReportResponse{
		Platform:    svc.Name(),
		Time:        svc.Now(),
		Calibration: toAccuracyJSON(svc.Accuracy()),
		Outstanding: svc.Outstanding(),
	}
	for _, rep := range svc.Reports() {
		// The client may hang up while we walk monitor state; stop early
		// rather than marshal a response nobody reads.
		if ctx.Err() != nil {
			return
		}
		resp.Loads = append(resp.Loads, toLoadJSON(rep))
	}
	if ctx.Err() != nil {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	in := getBuf()
	defer in.release()
	if err := readBody(r, in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	or, perr := parseObserveRequest(in.b)
	if perr != nil {
		or = ObserveRequest{}
		if err := json.Unmarshal(in.b, &or); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	svc, err := s.reg.Lookup(or.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, err := svc.Observe(or.ID, or.Actual)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := getBuf()
	defer out.release()
	out.b = appendObserve(out.b, svc.Name(), snap)
	writeRaw(w, http.StatusOK, out.b)
}

func (s *server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	services := s.reg.Services()
	if name := r.URL.Query().Get("platform"); name != "" {
		svc, err := s.reg.Lookup(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	var resp AccuracyResponse
	for _, svc := range services {
		resp.Platforms = append(resp.Platforms, AccuracyPlatform{
			Platform:    svc.Name(),
			Time:        svc.Now(),
			Outstanding: svc.Outstanding(),
			Accuracy:    toAccuracyJSON(svc.Accuracy()),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	resp := HealthResponse{Status: "ok"}
	for _, svc := range s.reg.Services() {
		if ctx.Err() != nil {
			return
		}
		hp := HealthPlatform{
			Platform: svc.Name(),
			Time:     svc.Now(),
			BWGaps:   toGapsJSON(svc.BWGaps()),
		}
		for _, rep := range svc.Reports() {
			if rep.Staleness > 0 {
				hp.Degraded = true
				resp.Status = "degraded"
			}
			hp.Machines = append(hp.Machines, HealthMachine{
				Machine: rep.Machine, Staleness: rep.Staleness, Gaps: toGapsJSON(rep.Gaps),
			})
		}
		resp.Platforms = append(resp.Platforms, hp)
	}
	if ctx.Err() != nil {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var ar AdvanceRequest
	if err := json.NewDecoder(r.Body).Decode(&ar); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if ar.Seconds <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("seconds must be positive, got %g", ar.Seconds))
		return
	}
	services := s.reg.Services()
	if ar.Platform != "" {
		svc, err := s.reg.Lookup(ar.Platform)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	out := map[string]float64{}
	for _, svc := range services {
		if err := svc.Advance(ar.Seconds); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out[svc.Name()] = svc.Now()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSnapshot answers POST /snapshot: the versioned binary image of
// every registered platform — cold specs included — suitable for
// `predictd -restore`. POST, not GET: exporting takes each live service's
// clock lock exclusively, briefly pausing its serving path, so the
// operation is not a safe idempotent read.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.reg.WriteSnapshot(&buf); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleSchedule answers POST /schedule: place up to MaxScheduleJobs SOR
// jobs across the fleet under the daemon's placement policy (or the
// body's per-request override). Tenants that fail lookup or prediction
// are skipped and recorded; jobs no tenant can score are dropped and
// counted, not queued.
func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var sr ScheduleRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(sr.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty job list"))
		return
	}
	if len(sr.Jobs) > MaxScheduleJobs {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%d jobs exceeds limit %d", len(sr.Jobs), MaxScheduleJobs))
		return
	}
	jobs := make([]fleetsched.JobSpec, len(sr.Jobs))
	for i, j := range sr.Jobs {
		jobs[i] = fleetsched.JobSpec{Name: j.Name, N: j.N, Iterations: j.Iterations, Deadline: j.Deadline}
	}
	pls, err := s.sched.SubmitWith(jobs, fleetsched.Policy(sr.Policy), sr.Quantile)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	policy, quantile := s.sched.Policy()
	if sr.Policy != "" {
		policy = fleetsched.Policy(sr.Policy)
	}
	if sr.Quantile != 0 {
		quantile = sr.Quantile
	}
	resp := ScheduleResponse{
		Policy:     string(policy),
		Quantile:   quantile,
		Placements: make([]PlacementJSON, len(pls)),
		Unplaced:   len(jobs) - len(pls),
	}
	for i, pl := range pls {
		resp.Placements[i] = PlacementJSON{
			JobID:         pl.JobID,
			Name:          pl.Name,
			Tenant:        pl.Tenant,
			Policy:        string(pl.Policy),
			Quantile:      pl.Quantile,
			Score:         pl.Score,
			PredictedMean: pl.PredictedMean,
			PredictedExec: pl.PredictedExec,
			PredictionID:  pl.PredictionID,
			Time:          pl.Time,
			Deadline:      pl.Deadline,
			Skips:         pl.Skips,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleScheduleStatus answers GET /schedule/status: fold the fleet's
// clock progress into the schedule (jobs start, finish, feed the
// calibrators; saturation re-evaluates; queued work migrates), then
// report the scheduler snapshot.
func (s *server) handleScheduleStatus(w http.ResponseWriter, r *http.Request) {
	s.sched.Sync()
	writeJSON(w, http.StatusOK, s.sched.Status())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
