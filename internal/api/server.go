// Package api is predictd's HTTP layer: JSON wire types, the route table,
// and the instrumented handler over a predict.Registry. It lives outside
// cmd/predictd so the load-test driver and the docs-drift checks can import
// the same routes and payload shapes the daemon serves.
//
// All handlers are safe for concurrent use (predict.Service serializes
// internally) and honor request-context cancellation: a handler that loses
// its client mid-walk stops without writing a response. Wrong-method hits
// on a registered path return 405 Method Not Allowed, not 404.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// MetricUptime is the daemon-level uptime gauge, in wall-clock seconds
// since the handler was built.
const MetricUptime = "predictd_uptime_seconds"

// Route names one endpoint served by NewHandler: the mux pattern
// ("METHOD /path") and a one-line summary. The pattern doubles as the
// route label on the HTTP metrics and access log.
type Route struct {
	Pattern string
	Summary string
}

// Routes is the full endpoint catalog, in registration order. Every entry
// must be documented in OPERATIONS.md — internal/readmecheck fails on
// drift.
var Routes = []Route{
	{"POST /predict", "issue a stochastic runtime prediction"},
	{"POST /observe", "feed a measured runtime back to the online calibrator"},
	{"GET /accuracy", "capture rates, calibration scale, and drift events"},
	{"GET /report", "per-machine monitor reports plus calibration state"},
	{"GET /healthz", "serving status plus per-fault-class gap counters"},
	{"POST /advance", "manually advance a platform's virtual clock"},
	{"GET /metrics", "Prometheus text exposition of the metric catalog"},
}

// PprofRoutes are registered only when Options.EnablePprof is set (the
// daemon's -pprof flag). The index page links the usual profiles.
var PprofRoutes = []Route{
	{"GET /debug/pprof/", "pprof profile index (opt-in)"},
}

// Options configures the optional observability surfaces of the handler.
// The zero value serves the JSON API with a private metrics registry (so
// GET /metrics always works), no access log, and no pprof.
type Options struct {
	// Metrics receives the HTTP-layer families and the uptime gauge; pass
	// the same registry the predict services were built with so one scrape
	// covers the whole catalog. Nil gets a fresh private registry.
	Metrics *obs.Registry
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// server routes HTTP requests onto a predict.Registry.
type server struct {
	reg *predict.Registry
}

// NewHandler builds the daemon's HTTP handler over reg: every Routes entry
// wrapped in the metrics/logging middleware, plus pprof when enabled.
func NewHandler(reg *predict.Registry, opts Options) http.Handler {
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	start := time.Now()
	opts.Metrics.NewGaugeFunc(MetricUptime,
		"Wall-clock seconds since the HTTP handler was built.",
		func() float64 { return time.Since(start).Seconds() })

	mw := obs.NewHTTPMiddleware(opts.Metrics)
	mw.Log = opts.AccessLog
	mw.PlatformFrom = platformFrom

	s := &server{reg: reg}
	handlers := map[string]http.Handler{
		"POST /predict": http.HandlerFunc(s.handlePredict),
		"POST /observe": http.HandlerFunc(s.handleObserve),
		"GET /accuracy": http.HandlerFunc(s.handleAccuracy),
		"GET /report":   http.HandlerFunc(s.handleReport),
		"GET /healthz":  http.HandlerFunc(s.handleHealthz),
		"POST /advance": http.HandlerFunc(s.handleAdvance),
		"GET /metrics":  opts.Metrics.Handler(),
	}
	mux := http.NewServeMux()
	for _, rt := range Routes {
		h, ok := handlers[rt.Pattern]
		if !ok {
			panic("api: route " + rt.Pattern + " has no handler")
		}
		mux.Handle(rt.Pattern, mw.Wrap(rt.Pattern, h))
	}
	if opts.EnablePprof {
		// The pprof index and its profile sub-pages; instrumented under one
		// route label so profile names don't blow up metric cardinality.
		mux.Handle("GET /debug/pprof/", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Index)))
		mux.Handle("GET /debug/pprof/profile", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Profile)))
		mux.Handle("GET /debug/pprof/trace", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Trace)))
		mux.Handle("GET /debug/pprof/symbol", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Symbol)))
		mux.Handle("GET /debug/pprof/cmdline", mw.Wrap("GET /debug/pprof/", http.HandlerFunc(pprof.Cmdline)))
	}
	return mux
}

// platformFrom extracts the platform a request targets, for the access
// log: the query parameter when present, else a peek at a JSON body (which
// is restored for the handler).
func platformFrom(r *http.Request) string {
	if p := r.URL.Query().Get("platform"); p != "" {
		return p
	}
	if r.Method == http.MethodGet || r.Body == nil {
		return ""
	}
	peeked, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return ""
	}
	r.Body = struct {
		io.Reader
		io.Closer
	}{io.MultiReader(bytes.NewReader(peeked), r.Body), r.Body}
	var peek struct {
		Platform string `json:"platform"`
	}
	_ = json.Unmarshal(peeked, &peek)
	return peek.Platform
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var pr PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	req, err := pr.ToRequest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	svc, err := s.reg.Lookup(pr.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if pr.Advance > 0 {
		if err := svc.Advance(pr.Advance); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	pred, err := svc.Predict(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	lo, hi := pred.Value.Interval()
	resp := PredictResponse{
		Platform:         svc.Name(),
		Time:             pred.Time,
		ID:               pred.ID,
		Mean:             pred.Value.Mean,
		Spread:           pred.Value.Spread,
		Lo:               lo,
		Hi:               hi,
		RawSpread:        pred.Raw.Spread,
		CalibrationScale: pred.CalibrationScale,
		Degraded:         pred.Degraded(),
		PartitionRows:    pred.Partition.Rows,
		BWMean:           pred.Bandwidth.Mean,
		BWSpread:         pred.Bandwidth.Spread,
		BWGaps:           toGapsJSON(pred.BWGaps),
	}
	for _, l := range pred.Loads {
		resp.Loads = append(resp.Loads, toLoadJSON(l))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	svc, err := s.reg.Lookup(r.URL.Query().Get("platform"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	resp := ReportResponse{
		Platform:    svc.Name(),
		Time:        svc.Now(),
		Calibration: toAccuracyJSON(svc.Accuracy()),
		Outstanding: svc.Outstanding(),
	}
	for _, rep := range svc.Reports() {
		// The client may hang up while we walk monitor state; stop early
		// rather than marshal a response nobody reads.
		if ctx.Err() != nil {
			return
		}
		resp.Loads = append(resp.Loads, toLoadJSON(rep))
	}
	if ctx.Err() != nil {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var or ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	svc, err := s.reg.Lookup(or.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, err := svc.Observe(or.ID, or.Actual)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{Platform: svc.Name(), Accuracy: toAccuracyJSON(snap)})
}

func (s *server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	services := s.reg.Services()
	if name := r.URL.Query().Get("platform"); name != "" {
		svc, err := s.reg.Lookup(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	var resp AccuracyResponse
	for _, svc := range services {
		resp.Platforms = append(resp.Platforms, AccuracyPlatform{
			Platform:    svc.Name(),
			Time:        svc.Now(),
			Outstanding: svc.Outstanding(),
			Accuracy:    toAccuracyJSON(svc.Accuracy()),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	resp := HealthResponse{Status: "ok"}
	for _, svc := range s.reg.Services() {
		if ctx.Err() != nil {
			return
		}
		hp := HealthPlatform{
			Platform: svc.Name(),
			Time:     svc.Now(),
			BWGaps:   toGapsJSON(svc.BWGaps()),
		}
		for _, rep := range svc.Reports() {
			if rep.Staleness > 0 {
				hp.Degraded = true
				resp.Status = "degraded"
			}
			hp.Machines = append(hp.Machines, HealthMachine{
				Machine: rep.Machine, Staleness: rep.Staleness, Gaps: toGapsJSON(rep.Gaps),
			})
		}
		resp.Platforms = append(resp.Platforms, hp)
	}
	if ctx.Err() != nil {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var ar AdvanceRequest
	if err := json.NewDecoder(r.Body).Decode(&ar); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if ar.Seconds <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("seconds must be positive, got %g", ar.Seconds))
		return
	}
	services := s.reg.Services()
	if ar.Platform != "" {
		svc, err := s.reg.Lookup(ar.Platform)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	out := map[string]float64{}
	for _, svc := range services {
		if err := svc.Advance(ar.Seconds); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out[svc.Name()] = svc.Now()
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
