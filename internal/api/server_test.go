package api

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// newStack builds both simulated platforms on a shared metrics registry
// behind an httptest server, mirroring the daemon's wiring.
func newStack(t *testing.T, opts Options) (*httptest.Server, *predict.Registry, *obs.Registry) {
	t.Helper()
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	reg := predict.NewRegistry()
	for _, id := range []int{1, 2} {
		cfg, err := predict.SimulatedConfig(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Metrics = metrics
		svc, err := predict.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.AdvanceTo(300); err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewHandler(reg, opts))
	t.Cleanup(ts.Close)
	return ts, reg, metrics
}

// TestMethodNotAllowed: a wrong-method hit on a registered path must be
// 405, not 404 — operators probing with the wrong verb should learn the
// path exists.
func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newStack(t, Options{})
	cases := []struct {
		method, path string
	}{
		{"POST", "/healthz"},
		{"GET", "/predict"},
		{"DELETE", "/report"},
		{"PUT", "/metrics"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status=%d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
	// An unregistered path stays 404.
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status=%d, want 404", resp.StatusCode)
	}
}

// TestContextCancellation: /report and /healthz must stop writing once the
// client is gone — a cancelled request context yields no response body.
func TestContextCancellation(t *testing.T) {
	_, reg, _ := newStack(t, Options{})
	s := &server{reg: reg}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, call := range map[string]func(http.ResponseWriter, *http.Request){
		"GET /report?platform=platform1": s.handleReport,
		"GET /healthz":                   s.handleHealthz,
	} {
		path := strings.TrimPrefix(name, "GET ")
		rec := httptest.NewRecorder()
		call(rec, httptest.NewRequest("GET", path, nil).WithContext(ctx))
		if rec.Body.Len() != 0 {
			t.Errorf("%s: wrote %d bytes for a cancelled request", name, rec.Body.Len())
		}
	}
	// Sanity: a live context still gets a full response.
	rec := httptest.NewRecorder()
	s.handleReport(rec, httptest.NewRequest("GET", "/report?platform=platform1", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("live report: status=%d bytes=%d", rec.Code, rec.Body.Len())
	}
}

// TestMetricsCatalog drives the full loop over HTTP and requires the
// exposition to carry the whole documented catalog: every pipeline family,
// the HTTP families, and uptime — at least 12 distinct names.
func TestMetricsCatalog(t *testing.T) {
	ts, _, metrics := newStack(t, Options{})
	body, _ := json.Marshal(PredictRequest{Platform: "platform1", N: 80, Iterations: 4})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	obody, _ := json.Marshal(ObserveRequest{Platform: "platform1", ID: pr.ID, Actual: pr.Mean})
	if resp, err = http.Post(ts.URL+"/observe", "application/json", bytes.NewReader(obody)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type=%q", ct)
	}
	fams, samples, err := obs.ParseText(scrape.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(fams) < 12 {
		t.Errorf("exposition has %d families, want >= 12: %v", len(fams), fams)
	}
	if samples == 0 {
		t.Error("exposition carries no samples")
	}
	want := []string{
		predict.MetricPredictions, predict.MetricPredictionErrors,
		predict.MetricObservations, predict.MetricDriftEvents,
		predict.MetricFaultGapSamples, predict.MetricCalibrationScale,
		predict.MetricOutstanding, predict.MetricVirtualTime,
		predict.MetricStageDuration,
		obs.MetricHTTPRequests, obs.MetricHTTPDuration, obs.MetricHTTPInFlight,
		MetricUptime,
	}
	for _, name := range want {
		if _, ok := fams[name]; !ok {
			t.Errorf("exposition missing family %q", name)
		}
	}
	// Spot-check series-level state: one prediction and one observation on
	// platform1, and every pipeline stage timed.
	var sb strings.Builder
	if err := metrics.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range []string{
		predict.MetricPredictions + `{platform="platform1"} 1`,
		predict.MetricObservations + `{platform="platform1"} 1`,
		predict.MetricPredictions + `{platform="platform2"} 0`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q", line)
		}
	}
	for _, stage := range predict.Stages {
		if !strings.Contains(text, `stage="`+stage+`"`) {
			t.Errorf("exposition missing stage series %q", stage)
		}
	}
}

// TestPprofOptIn: /debug/pprof/ is absent by default and served when
// enabled.
func TestPprofOptIn(t *testing.T) {
	off, _, _ := newStack(t, Options{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status=%d, want 404", resp.StatusCode)
	}
	on, _, _ := newStack(t, Options{EnablePprof: true})
	if resp, err = http.Get(on.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status=%d, want 200", resp.StatusCode)
	}
}

// TestAccessLogPlatformFromBody: the access log must carry the platform
// from a POST body without consuming it — the handler still decodes the
// request.
func TestAccessLogPlatformFromBody(t *testing.T) {
	var logBuf strings.Builder
	ts, _, _ := newStack(t, Options{AccessLog: log.New(&logBuf, "", 0)})
	body, _ := json.Marshal(PredictRequest{Platform: "platform2", N: 80, Iterations: 4})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status=%d (body peek broke the handler?)", resp.StatusCode)
	}
	line := strings.TrimSpace(logBuf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, line)
	}
	if entry["platform"] != "platform2" || entry["route"] != "POST /predict" {
		t.Errorf("log entry=%v", entry)
	}
}

// TestRoutesHaveHandlers: the route table and handler map stay in sync —
// NewHandler panics otherwise, so constructing it is the assertion.
func TestRoutesHaveHandlers(t *testing.T) {
	if len(Routes) != 11 {
		t.Errorf("route table has %d entries, want 11", len(Routes))
	}
	for _, rt := range Routes {
		parts := strings.SplitN(rt.Pattern, " ", 2)
		if len(parts) != 2 || rt.Summary == "" {
			t.Errorf("malformed route %+v", rt)
		}
	}
}

// TestBatchPredict drives POST /predict/batch end to end: mixed platforms
// in one call, positional results, per-item errors that do not fail the
// batch, and predictions that remain observable afterwards.
func TestBatchPredict(t *testing.T) {
	ts, _, _ := newStack(t, Options{})
	body, _ := json.Marshal(BatchPredictRequest{Requests: []PredictRequest{
		{Platform: "platform1", N: 100, Iterations: 4},
		{Platform: "platform2", N: 100, Iterations: 4},
		{Platform: "nope", N: 100, Iterations: 4},
		{Platform: "platform1", N: 100, Iterations: 4}, // same shape: cache hit
		{Platform: "platform1", N: 0, Iterations: 4},   // invalid: n must be positive
	}})
	resp, err := http.Post(ts.URL+"/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BatchPredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 5 {
		t.Fatalf("got %d responses, want 5", len(br.Responses))
	}
	if br.Errors != 2 {
		t.Errorf("Errors=%d, want 2", br.Errors)
	}
	for i, ok := range []bool{true, true, false, true, false} {
		item := br.Responses[i]
		if ok && (item.PredictResponse == nil || item.Error != "" || item.ID == 0) {
			t.Errorf("item %d: want a prediction, got %+v", i, item)
		}
		if !ok && (item.Error == "" || item.PredictResponse != nil) {
			t.Errorf("item %d: want an error, got %+v", i, item)
		}
	}
	// Same tick + same shape must yield the same interval with a fresh ID.
	a, b := br.Responses[0], br.Responses[3]
	if a.ID == b.ID {
		t.Error("cache hit reused a ledger ID")
	}
	if a.Mean != b.Mean || a.Spread != b.Spread || a.Time != b.Time {
		t.Errorf("same-tick same-shape predictions diverged: %+v vs %+v", a, b)
	}
	// The batch-issued prediction closes the loop like a single one.
	obody, _ := json.Marshal(ObserveRequest{Platform: "platform1", ID: a.ID, Actual: a.Mean})
	oresp, err := http.Post(ts.URL+"/observe", "application/json", bytes.NewReader(obody))
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusOK {
		t.Errorf("observe on batch prediction: status %d", oresp.StatusCode)
	}
}

// TestBatchPredictRejections: malformed shapes that must 400 — an empty
// batch, an oversized one — and the per-item advance rejection that keeps
// a batch tick-coherent.
func TestBatchPredictRejections(t *testing.T) {
	ts, _, _ := newStack(t, Options{})
	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/predict/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post([]byte(`{"requests":[]}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := BatchPredictRequest{Requests: make([]PredictRequest, MaxBatchSize+1)}
	for i := range big.Requests {
		big.Requests[i] = PredictRequest{Platform: "platform1", N: 10, Iterations: 1}
	}
	bigBody, _ := json.Marshal(big)
	if resp := post(bigBody); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	// advance inside a batch item is refused per-item, not per-call.
	resp := post([]byte(`{"requests":[{"platform":"platform1","n":10,"iterations":1,"advance":5},{"platform":"platform1","n":10,"iterations":1}]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with advance item: status %d, want 200", resp.StatusCode)
	}
	var br BatchPredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Errors != 1 || br.Responses[0].Error == "" || br.Responses[1].PredictResponse == nil {
		t.Errorf("advance item should fail alone: %+v", br)
	}
}

// TestScheduleEndpoints drives POST /schedule and GET /schedule/status end
// to end: default-policy placement, per-request policy override, status
// accounting, and the input-validation 400s.
func TestScheduleEndpoints(t *testing.T) {
	ts, _, _ := newStack(t, Options{})
	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	body, _ := json.Marshal(ScheduleRequest{Jobs: []ScheduleJob{
		{Name: "a", N: 120, Iterations: 4, Deadline: 1e6},
		{Name: "b", N: 120, Iterations: 4},
	}})
	resp := post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d, want 200", resp.StatusCode)
	}
	var sr ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Policy != "quantile" || sr.Quantile != 0.95 {
		t.Errorf("default policy=%q q=%v, want quantile/0.95", sr.Policy, sr.Quantile)
	}
	if len(sr.Placements) != 2 || sr.Unplaced != 0 {
		t.Fatalf("placements=%d unplaced=%d, want 2/0", len(sr.Placements), sr.Unplaced)
	}
	for _, pl := range sr.Placements {
		if pl.Tenant != "platform1" && pl.Tenant != "platform2" {
			t.Errorf("placed on unknown tenant %q", pl.Tenant)
		}
		if pl.PredictedExec <= 0 {
			t.Errorf("job %d: predicted_exec=%v, want > 0", pl.JobID, pl.PredictedExec)
		}
	}

	// Per-request policy override is echoed and applied to each placement.
	body, _ = json.Marshal(ScheduleRequest{
		Jobs:   []ScheduleJob{{Name: "c", N: 120, Iterations: 4}},
		Policy: "mean",
	})
	resp = post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mean schedule: status %d, want 200", resp.StatusCode)
	}
	sr = ScheduleResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Policy != "mean" || len(sr.Placements) != 1 || sr.Placements[0].Policy != "mean" {
		t.Errorf("override not applied: %+v", sr)
	}

	// Status folds completions forward and reports the population.
	statusResp, err := http.Get(ts.URL + "/schedule/status")
	if err != nil {
		t.Fatal(err)
	}
	if statusResp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d, want 200", statusResp.StatusCode)
	}
	var st map[string]any
	if err := json.NewDecoder(statusResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["submitted"].(float64) != 3 {
		t.Errorf("submitted=%v, want 3", st["submitted"])
	}
	if tenants, ok := st["tenants"].([]any); !ok || len(tenants) != 2 {
		t.Errorf("tenants=%v, want 2 entries", st["tenants"])
	}

	// Validation: empty list, oversize list, bad job shape, bad policy.
	for _, bad := range []string{
		`{"jobs":[]}`,
		`{"jobs":[{"n":2,"iterations":1}]}`,
		`{"jobs":[{"n":100,"iterations":4}],"policy":"p99"}`,
		`not json`,
	} {
		if resp := post([]byte(bad)); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	big := ScheduleRequest{Jobs: make([]ScheduleJob, MaxScheduleJobs+1)}
	for i := range big.Jobs {
		big.Jobs[i] = ScheduleJob{N: 100, Iterations: 1}
	}
	bigBody, _ := json.Marshal(big)
	if resp := post(bigBody); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized schedule: status %d, want 400", resp.StatusCode)
	}
}
