package api

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCodecParsers holds the fast request parsers to their one-sided
// strictness contract: on any input each parser either returns an error
// (the handler falls back to encoding/json, which owns correctness) or
// accepts — and then stdlib must accept the same body and decode it to
// exactly the same value. A body the fast path accepts but stdlib rejects,
// or decodes differently, is a serving-path bug: the daemon would answer a
// request it should 400, or mis-read a field.
func FuzzCodecParsers(f *testing.F) {
	seeds := []string{
		// predict bodies, accepted and fallback-forcing
		`{"platform":"platform1","n":200,"iterations":5}`,
		`{"platform":"p2","n":80,"iterations":4,"strategy":"conservative","max_strategy":"magnitude","iteration_rel":"unrelated","advance":2.5}`,
		` { "n" : 10 , "unknown" : {"nested":[1,2,{"x":"y"}]} , "iterations" : 1 } `,
		`{"n":120,"iterations":6,"level":0.9,"levels":[0.5,0.95]}`,
		`{"n":120,"iterations":6,"levels":null}`,
		`{"N":120,"ITERATIONS":6}`,
		`{"platform":"esc\"aped","n":1}`,
		`{"n":1e2}`,
		`{"n":01}`,
		`{"advance":+5}`,
		`{"advance":1.}`,
		`{"advance":-3.5e-1}`,
		`{"unknown":truely}`,
		`{"unknown":}`,
		`{"levels":[0.5,]}`,
		`{}`,
		``,
		// observe bodies
		`{"platform":"platform1","id":17,"actual":0.42}`,
		`{"id":1,"actual":3}`,
		`{"id":-1,"actual":3}`,
		// batch bodies
		`{"requests":[{"platform":"platform1","n":10,"iterations":2},{"n":20,"iterations":3,"strategy":"optimistic"}]}`,
		`{"requests":[]}`,
		`{"requests":null}`,
		`{"requests":[1]}`,
		`{"requests":[{"n":1}],"requests":[{}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := parsePredictRequest(data); err == nil {
			var want PredictRequest
			if uerr := json.Unmarshal(data, &want); uerr != nil {
				t.Fatalf("fast predict parser accepted a body stdlib rejects (%v): %q", uerr, data)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("predict parse diverged for %q:\nfast:   %+v\nstdlib: %+v", data, got, want)
			}
		}
		if got, err := parseObserveRequest(data); err == nil {
			var want ObserveRequest
			if uerr := json.Unmarshal(data, &want); uerr != nil {
				t.Fatalf("fast observe parser accepted a body stdlib rejects (%v): %q", uerr, data)
			}
			if got != want {
				t.Fatalf("observe parse diverged for %q:\nfast:   %+v\nstdlib: %+v", data, got, want)
			}
		}
		if got, err := parseBatchRequest(data); err == nil {
			var want BatchPredictRequest
			if uerr := json.Unmarshal(data, &want); uerr != nil {
				t.Fatalf("fast batch parser accepted a body stdlib rejects (%v): %q", uerr, data)
			}
			if !reflect.DeepEqual(got, want.Requests) {
				t.Fatalf("batch parse diverged for %q:\nfast:   %+v\nstdlib: %+v", data, got, want.Requests)
			}
		}
	})
}
