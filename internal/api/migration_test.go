package api

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"prodpred/internal/predict"
)

// recordedExchange is one request/response pair captured against the code
// that wrote testdata/snapshot_v1.snap, before the v2 snapshot format and
// the distribution payload existed.
type recordedExchange struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   string `json:"body"`
	Status int    `json:"status"`
	Resp   string `json:"resp"`
}

// restoreV1 reads the golden v1 snapshot into a registry — exactly what
// `predictd -restore` does at startup.
func restoreV1(t *testing.T) *predict.Registry {
	t.Helper()
	raw, err := os.ReadFile("../predict/testdata/snapshot_v1.snap")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := predict.ReadSnapshot(bytes.NewReader(raw), predict.RegistryOptions{})
	if err != nil {
		t.Fatalf("v1 snapshot no longer restores: %v", err)
	}
	return reg
}

// subsetEqual requires every leaf recorded in want to appear, with the
// identical value, in got; keys only got carries (fields added since the
// fixture was recorded) are ignored. Arrays must match element count —
// growing a list would change what the recorded clients saw.
func subsetEqual(path string, want, got any) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: recorded object, now %T", path, got)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("%s.%s: recorded field missing from response", path, k)
			}
			if err := subsetEqual(path+"."+k, wv, gv); err != nil {
				return err
			}
		}
		return nil
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("%s: recorded array, now %T", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s: recorded %d elements, now %d", path, len(w), len(g))
		}
		for i := range w {
			if err := subsetEqual(fmt.Sprintf("%s[%d]", path, i), w[i], g[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("%s: recorded %v, now %v", path, want, got)
		}
		return nil
	}
}

// TestV1SnapshotServesIdentically is the migration guarantee: a snapshot
// written by the v1 code restores into today's registry and serves
// byte-identical legacy fields on the exact request sequence recorded
// against the old build — IDs, means, spreads, calibration state, all of
// it. New fields (forecaster tags, dist payloads, quantile calibration
// state) may appear on top; nothing recorded may change.
func TestV1SnapshotServesIdentically(t *testing.T) {
	raw, err := os.ReadFile("../predict/testdata/snapshot_v1_responses.json")
	if err != nil {
		t.Fatal(err)
	}
	var exchanges []recordedExchange
	if err := json.Unmarshal(raw, &exchanges); err != nil {
		t.Fatal(err)
	}
	if len(exchanges) == 0 {
		t.Fatal("empty fixture")
	}
	handler := NewHandler(restoreV1(t), Options{})
	for i, ex := range exchanges {
		var body *strings.Reader
		if ex.Body != "" {
			body = strings.NewReader(ex.Body)
		} else {
			body = strings.NewReader("")
		}
		req := httptest.NewRequest(ex.Method, ex.Path, body)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != ex.Status {
			t.Fatalf("exchange %d (%s %s): status %d, recorded %d\n%s",
				i, ex.Method, ex.Path, rec.Code, ex.Status, rec.Body.String())
		}
		var want, got any
		if err := json.Unmarshal([]byte(ex.Resp), &want); err != nil {
			t.Fatalf("exchange %d: bad recorded response: %v", i, err)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("exchange %d: response is not JSON: %v\n%s", i, err, rec.Body.String())
		}
		if err := subsetEqual("resp", want, got); err != nil {
			t.Errorf("exchange %d (%s %s) diverged from the v1 recording: %v",
				i, ex.Method, ex.Path, err)
		}
	}
}

// TestV1SnapshotMigratesToV2: restoring a v1 snapshot and re-snapshotting
// IS the migration — the rewrite comes out in the v2 format, and the v2
// image is a fixed point (read + rewrite is byte-identical).
func TestV1SnapshotMigratesToV2(t *testing.T) {
	reg := restoreV1(t)
	var v2 bytes.Buffer
	if err := reg.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	b := v2.Bytes()
	if len(b) < 10 || string(b[:6]) != "PPSNAP" {
		t.Fatalf("bad snapshot header % x", b[:10])
	}
	if ver := binary.LittleEndian.Uint32(b[6:10]); ver != 2 {
		t.Fatalf("re-snapshot of a restored v1 image has version %d, want 2", ver)
	}
	reg2, err := predict.ReadSnapshot(bytes.NewReader(b), predict.RegistryOptions{})
	if err != nil {
		t.Fatalf("migrated v2 snapshot does not restore: %v", err)
	}
	var again bytes.Buffer
	if err := reg2.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, again.Bytes()) {
		t.Fatal("v2 snapshot is not a fixed point: restore + rewrite changed bytes")
	}
}

// TestV1RestoreServesQuantileLevels: a restored v1 fleet answers ?level=
// requests immediately — with identity quantile calibration (no v1
// evidence), so the calibrated grid equals the raw grid.
func TestV1RestoreServesQuantileLevels(t *testing.T) {
	handler := NewHandler(restoreV1(t), Options{})
	req := httptest.NewRequest("POST", "/predict?level=0.9&levels=0.5,0.95",
		strings.NewReader(`{"platform":"platform2","n":120,"iterations":6}`))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dist == nil {
		t.Fatal("restored v1 service served no dist payload")
	}
	if len(resp.Dist.Intervals) != 3 {
		t.Fatalf("asked for 3 interval levels, got %d", len(resp.Dist.Intervals))
	}
	for _, iv := range resp.Dist.Intervals {
		if iv.Lo > iv.Hi {
			t.Fatalf("interval %.2f inverted: [%g, %g]", iv.Level, iv.Lo, iv.Hi)
		}
	}
	if got := []float64{resp.Dist.Intervals[0].Level, resp.Dist.Intervals[1].Level, resp.Dist.Intervals[2].Level}; !reflect.DeepEqual(got, []float64{0.9, 0.5, 0.95}) {
		t.Fatalf("interval levels out of order: %v", got)
	}
	if !reflect.DeepEqual(resp.Dist.Raw, resp.Dist.Calibrated) {
		t.Fatalf("v1 restore should serve identity quantile calibration:\nraw: %v\ncal: %v", resp.Dist.Raw, resp.Dist.Calibrated)
	}
	for i := 1; i < len(resp.Dist.Calibrated); i++ {
		if resp.Dist.Calibrated[i] < resp.Dist.Calibrated[i-1] {
			t.Fatalf("calibrated grid not nondecreasing: %v", resp.Dist.Calibrated)
		}
	}
	if resp.Dist.Forecaster == "" {
		t.Fatal("dist payload carries no forecaster tag")
	}
}
