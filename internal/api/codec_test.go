package api

import (
	"encoding/json"
	"reflect"
	"testing"

	"prodpred/internal/calib"
	"prodpred/internal/predict"
)

// codecService builds one warmed simulated platform for codec tests and
// benchmarks.
func codecService(t testing.TB, seed int64) *predict.Service {
	cfg, err := predict.SimulatedConfig(1, seed)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := predict.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(300); err != nil {
		t.Fatal(err)
	}
	return svc
}

// refPredictResponse is the reflection-path reference: the wire struct the
// hand-rolled encoder must match byte-for-byte semantics with.
func refPredictResponse(platform string, p predict.Prediction) PredictResponse {
	lo, hi := p.Value.Interval()
	pr := PredictResponse{
		Platform: platform, Time: p.Time, ID: p.ID,
		Mean: p.Value.Mean, Spread: p.Value.Spread, Lo: lo, Hi: hi,
		RawSpread: p.Raw.Spread, CalibrationScale: p.CalibrationScale,
		Degraded: p.Degraded(),
		BWMean:   p.Bandwidth.Mean, BWSpread: p.Bandwidth.Spread,
		BWGaps: toGapsJSON(p.BWGaps),
	}
	if p.Partition != nil {
		pr.PartitionRows = p.Partition.Rows
	}
	for _, l := range p.Loads {
		pr.Loads = append(pr.Loads, toLoadJSON(l))
	}
	pr.Dist = toDistJSON(p.Dist)
	return pr
}

// mustEqualJSON unmarshals both encodings into untyped values and requires
// exact agreement — same keys, same values, same nesting.
func mustEqualJSON(t *testing.T, got, want []byte) {
	t.Helper()
	var g, w any
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("codec output is not valid JSON: %v\n%s", err, got)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("reference output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Errorf("codec and stdlib encodings diverge:\ncodec:  %s\nstdlib: %s", got, want)
	}
}

// TestAppendPredictionMatchesStdlib: the hand-rolled prediction encoder
// must be indistinguishable from encoding/json over the PredictResponse
// wire struct, on a real pipeline prediction.
func TestAppendPredictionMatchesStdlib(t *testing.T) {
	svc := codecService(t, 7)
	p, err := svc.Predict(predict.Request{N: 120, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := appendPrediction(nil, svc.Name(), &p)
	want, err := json.Marshal(refPredictResponse(svc.Name(), p))
	if err != nil {
		t.Fatal(err)
	}
	mustEqualJSON(t, got, want)
}

// TestAppendObserveMatchesStdlib covers the observe-path encoder, both with
// an empty snapshot (drifts omitted) and a populated one.
func TestAppendObserveMatchesStdlib(t *testing.T) {
	snaps := []calib.Snapshot{
		{Scale: 1, Target: 0.95},
		{
			Observed: 40, WindowFill: 32, RawCapture: 0.9, CalibratedCapture: 0.97,
			CumRawCapture: 0.88, CumCalibratedCapture: 0.96,
			MeanSignedRelErr: -0.02, MeanAbsRelErr: 0.07,
			MeanRawWidth: 0.4, MeanCalibratedWidth: 0.55,
			Scale: 1.3, Target: 0.95, SinceReset: 12, LastTime: 812.5,
			Drifts: []calib.DriftEvent{
				{Time: 400, Seq: 1, Reason: "shift \"up\"", Stat: 3.2},
				{Time: 700, Seq: 2, Reason: "spread", Stat: 2.8},
			},
		},
	}
	for i, s := range snaps {
		got := appendObserve(nil, "platform1", s)
		want, err := json.Marshal(ObserveResponse{Platform: "platform1", Accuracy: toAccuracyJSON(s)})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualJSON(t, got, want)
		if i == 0 && string(got) == "" {
			t.Fatal("empty encoding")
		}
	}
}

// TestAppendErrorObjMatchesStdlib: error payloads escape like stdlib does.
func TestAppendErrorObjMatchesStdlib(t *testing.T) {
	for _, msg := range []string{"plain", `quote " and \ slash`, "line\nbreak\ttab", "ctrl\x01"} {
		got := appendErrorObj(nil, msg)
		want, err := json.Marshal(map[string]string{"error": msg})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualJSON(t, got, want)
	}
}

// TestParsePredictRequestMatchesStdlib: every body the fast parser accepts
// must decode exactly as encoding/json does; bodies it cannot handle must
// return an error so the handler falls back (never silently mis-parse).
func TestParsePredictRequestMatchesStdlib(t *testing.T) {
	accept := []string{
		`{"platform":"platform1","n":200,"iterations":5}`,
		`{"platform":"p2","n":80,"iterations":4,"strategy":"conservative","max_strategy":"magnitude","iteration_rel":"unrelated","advance":2.5}`,
		` { "n" : 10 , "unknown" : {"nested":[1,2,{"x":"y"}]} , "iterations" : 1 } `,
		`{"platform":"p","n":100,"iterations":5,"advance":-3.5e-1}`,
		`{}`,
		`{"n":120,"iterations":6,"level":0.9}`,
		`{"n":120,"iterations":6,"levels":[0.5,0.9,0.95]}`,
		`{"n":120,"iterations":6,"levels":[]}`,
		`{"n":120,"iterations":6,"levels":null}`,
		`{"N":120,"Iterations":6,"LEVEL":0.8}`, // stdlib matches fields case-insensitively
		`{"unknown":true,"other":false,"gone":null,"n":5,"iterations":1}`,
	}
	for _, body := range accept {
		got, err := parsePredictRequest([]byte(body))
		if err != nil {
			t.Errorf("fast parser rejected %s: %v", body, err)
			continue
		}
		var want PredictRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parse diverged for %s:\nfast:   %+v\nstdlib: %+v", body, got, want)
		}
	}
	fallback := []string{
		`{"platform":"esc\"aped","n":1}`, // escape sequences
		`{"n":1e2}`,                      // exponent form: stdlib rejects for int fields
		`{"n":1} trailing`,
		`{"n":}`,
		`[1,2]`,
		`{"n":1,}`,
		``,
		`{"n":01}`,                // leading zero: stdlib syntax error
		`{"advance":+5}`,          // leading plus: stdlib syntax error
		`{"advance":1.}`,          // bare trailing dot: stdlib syntax error
		`{"advance":.5}`,          // bare leading dot: stdlib syntax error
		`{"unknown":truely}`,      // malformed keyword in a skipped value
		`{"unknown":}`,            // missing skipped value
		"{\"platform\":\"a\nb\"}", // raw control byte in string: stdlib syntax error
		`{"levels":[0.5,]}`,
	}
	for _, body := range fallback {
		if _, err := parsePredictRequest([]byte(body)); err == nil {
			t.Errorf("fast parser accepted unsupported body %q", body)
		}
	}
}

// TestParseObserveRequestMatchesStdlib mirrors the predict-request test for
// the observe path.
func TestParseObserveRequestMatchesStdlib(t *testing.T) {
	for _, body := range []string{
		`{"platform":"platform1","id":17,"actual":0.42}`,
		`{"id":1,"actual":3}`,
	} {
		got, err := parseObserveRequest([]byte(body))
		if err != nil {
			t.Fatalf("fast parser rejected %s: %v", body, err)
		}
		var want ObserveRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parse diverged for %s: %+v vs %+v", body, got, want)
		}
	}
}

// TestParseBatchRequestMatchesStdlib: the batch wrapper parses item lists
// exactly as stdlib, and falls back on anything else.
func TestParseBatchRequestMatchesStdlib(t *testing.T) {
	accept := []string{
		`{"requests":[{"platform":"platform1","n":10,"iterations":2},{"platform":"platform2","n":20,"iterations":3,"strategy":"optimistic"}]}`,
		`{"requests":[]}`,
		`{"requests":null}`,
		`{}`,
	}
	for _, body := range accept {
		got, err := parseBatchRequest([]byte(body))
		if err != nil {
			t.Errorf("fast parser rejected %s: %v", body, err)
			continue
		}
		var want BatchPredictRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want.Requests) {
			t.Errorf("parse diverged for %s:\nfast:   %+v\nstdlib: %+v", body, got, want.Requests)
		}
	}
	for _, body := range []string{`{"requests":[{"platform":"a\"b"}]}`, `{"requests":[1]}`, `{"requests":[{}],"x"}`} {
		if _, err := parseBatchRequest([]byte(body)); err == nil {
			t.Errorf("fast parser accepted unsupported body %q", body)
		}
	}
}

// TestCodecFewerAllocs is the allocation claim itself: encoding a
// prediction through the pooled codec must allocate strictly less than the
// reflection path, and parsing a predict request must not allocate beyond
// its field strings.
func TestCodecFewerAllocs(t *testing.T) {
	svc := codecService(t, 11)
	p, err := svc.Predict(predict.Request{N: 120, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	name := svc.Name()
	codec := testing.AllocsPerRun(200, func() {
		out := getBuf()
		out.b = appendPrediction(out.b, name, &p)
		out.release()
	})
	stdlib := testing.AllocsPerRun(200, func() {
		if _, err := json.Marshal(refPredictResponse(name, p)); err != nil {
			t.Fatal(err)
		}
	})
	if codec >= stdlib {
		t.Errorf("codec path allocates %.1f/op, stdlib %.1f/op — want strictly fewer", codec, stdlib)
	}
	if codec > 1 {
		t.Errorf("pooled codec encode allocates %.1f/op, want ≤1", codec)
	}
}

// BenchmarkServicePredictParallel measures the serving hot path end to end
// — Predict plus response encoding — under parallel load, once per codec.
// The codec flavor must show fewer allocs/op than the stdjson flavor.
func BenchmarkServicePredictParallel(b *testing.B) {
	for _, mode := range []string{"codec", "stdjson"} {
		b.Run(mode, func(b *testing.B) {
			svc := codecService(b, 13)
			req := predict.Request{N: 120, Iterations: 6}
			name := svc.Name()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p, err := svc.Predict(req)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "codec" {
						out := getBuf()
						out.b = appendPrediction(out.b, name, &p)
						out.release()
					} else {
						if _, err := json.Marshal(refPredictResponse(name, p)); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}
