package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prodpred/internal/stats"
)

// triModal mimics the paper's Figure 5 platform-1 load: modes near 0.33,
// 0.49, and 0.94.
func triModal(t *testing.T) *Mixture {
	t.Helper()
	m, err := NewMixture(
		[]Distribution{
			Normal{Mu: 0.33, Sigma: 0.03},
			Normal{Mu: 0.49, Sigma: 0.05},
			Normal{Mu: 0.94, Sigma: 0.02},
		},
		[]float64{0.3, 0.3, 0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixtureContract(t *testing.T) {
	m := triModal(t)
	checkDistribution(t, "mixture", m, 0, 1.2)
	if m.K() != 3 {
		t.Errorf("K=%d", m.K())
	}
}

func TestMixtureValidation(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Distribution{n}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewMixture([]Distribution{n}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Distribution{n}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
	if _, err := NewMixture([]Distribution{n, n}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	m, err := NewMixture([]Distribution{n, n}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if !almostEqual(w[0], 0.25, 1e-12) || !almostEqual(w[1], 0.75, 1e-12) {
		t.Errorf("weights=%v", w)
	}
}

func TestMixtureMeanVarianceLawOfTotal(t *testing.T) {
	m := triModal(t)
	wantMean := 0.3*0.33 + 0.3*0.49 + 0.4*0.94
	if !almostEqual(m.Mean(), wantMean, 1e-12) {
		t.Errorf("mean=%g want %g", m.Mean(), wantMean)
	}
	// Cross-check variance against a large sample.
	rng := rand.New(rand.NewSource(12))
	xs := SampleN(m, rng, 100000)
	if !almostEqual(stats.PopVariance(xs), m.Variance(), 0.003) {
		t.Errorf("sample var=%g analytic=%g", stats.PopVariance(xs), m.Variance())
	}
}

func TestMixtureComponentFrequencies(t *testing.T) {
	m := triModal(t)
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 3)
	n := 60000
	for i := 0; i < n; i++ {
		counts[m.PickComponent(rng)]++
	}
	want := []float64{0.3, 0.3, 0.4}
	for i, c := range counts {
		got := float64(c) / float64(n)
		if !almostEqual(got, want[i], 0.01) {
			t.Errorf("component %d frequency %g want %g", i, got, want[i])
		}
	}
}

func TestMixtureIsMultimodal(t *testing.T) {
	// The tri-modal mixture's PDF should have local minima between modes.
	m := triModal(t)
	pdfAt := func(x float64) float64 { return m.PDF(x) }
	if !(pdfAt(0.33) > pdfAt(0.41) && pdfAt(0.49) > pdfAt(0.41)) {
		t.Error("no valley between modes 1 and 2")
	}
	if !(pdfAt(0.49) > pdfAt(0.7) && pdfAt(0.94) > pdfAt(0.7)) {
		t.Error("no valley between modes 2 and 3")
	}
}

func TestMixtureQuantileMonotone(t *testing.T) {
	m := triModal(t)
	prev := math.Inf(-1)
	for p := 0.01; p < 1; p += 0.01 {
		q := m.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%g: %g < %g", p, q, prev)
		}
		prev = q
	}
	// Edge p values are clamped, not NaN.
	if math.IsNaN(m.Quantile(0)) || math.IsNaN(m.Quantile(1)) {
		t.Error("edge quantiles NaN")
	}
}

func TestMixtureSortedByMean(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{Normal{Mu: 0.94, Sigma: 0.02}, Normal{Mu: 0.33, Sigma: 0.03}},
		[]float64{0.6, 0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := m.SortedByMean()
	if s.Components()[0].Mean() != 0.33 || s.Components()[1].Mean() != 0.94 {
		t.Errorf("not sorted: %g %g", s.Components()[0].Mean(), s.Components()[1].Mean())
	}
	if !almostEqual(s.Weights()[0], 0.4, 1e-12) {
		t.Errorf("weight did not follow component: %v", s.Weights())
	}
	// Original untouched.
	if m.Components()[0].Mean() != 0.94 {
		t.Error("SortedByMean mutated the receiver")
	}
}

func TestMixtureSingleComponentDegeneratesToComponent(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0.5}
	m, err := NewMixture([]Distribution{n}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		if !almostEqual(m.PDF(x), n.PDF(x), 1e-12) || !almostEqual(m.CDF(x), n.CDF(x), 1e-12) {
			t.Fatalf("single-component mixture differs from component at %g", x)
		}
	}
	if !almostEqual(m.Quantile(0.3), n.Quantile(0.3), 1e-6) {
		t.Errorf("quantile differs: %g vs %g", m.Quantile(0.3), n.Quantile(0.3))
	}
}

// Property: mixture CDF is a convex combination, so it lies between the min
// and max of the component CDFs at every point.
func TestMixtureCDFBoundsProperty(t *testing.T) {
	m := triModal(t)
	f := func(xRaw float64) bool {
		if math.IsNaN(xRaw) || math.IsInf(xRaw, 0) {
			return true
		}
		x := math.Mod(xRaw, 3)
		lo, hi := 1.0, 0.0
		for _, c := range m.Components() {
			v := c.CDF(x)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		got := m.CDF(x)
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
