package dist

import (
	"math"
	"math/rand"
	"testing"

	"prodpred/internal/stats"
)

func TestTruncatedNormalContract(t *testing.T) {
	tn, err := NewTruncatedNormal(0.48, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "truncnormal", tn, -0.2, 1.2)
	if tn.PDF(-0.01) != 0 || tn.PDF(1.01) != 0 {
		t.Error("PDF outside bounds should be 0")
	}
	if tn.CDF(-0.01) != 0 || tn.CDF(1.0) != 1 {
		t.Error("CDF at bounds wrong")
	}
	lo, hi := tn.Bounds()
	if lo != 0 || hi != 1 {
		t.Errorf("Bounds=%g,%g", lo, hi)
	}
	if tn.Base().Mu != 0.48 {
		t.Errorf("Base mu=%g", tn.Base().Mu)
	}
}

func TestTruncatedNormalSamplesInBounds(t *testing.T) {
	tn, err := NewTruncatedNormal(0.9, 0.3, 0, 1) // heavy truncation at the top
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	xs := SampleN(tn, rng, 20000)
	for _, x := range xs {
		if x < 0 || x > 1 {
			t.Fatalf("sample %g out of bounds", x)
		}
	}
	// Truncating the upper tail pulls the mean below mu.
	if m := stats.Mean(xs); m >= 0.9 {
		t.Errorf("mean=%g should be < 0.9", m)
	}
	if !almostEqual(stats.Mean(xs), tn.Mean(), 0.01) {
		t.Errorf("sample mean %g vs analytic %g", stats.Mean(xs), tn.Mean())
	}
	if !almostEqual(stats.StdDev(xs), StdDev(tn), 0.01) {
		t.Errorf("sample std %g vs analytic %g", stats.StdDev(xs), StdDev(tn))
	}
}

func TestTruncatedNormalNearlyUntruncated(t *testing.T) {
	// Bounds far beyond the mass: behaves like the base normal.
	tn, err := NewTruncatedNormal(5, 1, -100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tn.Mean(), 5, 1e-9) {
		t.Errorf("mean=%g", tn.Mean())
	}
	if !almostEqual(tn.Variance(), 1, 1e-6) {
		t.Errorf("variance=%g", tn.Variance())
	}
	if !almostEqual(tn.Quantile(0.975), 5+1.959963984540054, 1e-6) {
		t.Errorf("q975=%g", tn.Quantile(0.975))
	}
}

func TestTruncatedNormalValidation(t *testing.T) {
	if _, err := NewTruncatedNormal(0, 0, 0, 1); err == nil {
		t.Error("sigma=0 should fail")
	}
	if _, err := NewTruncatedNormal(0, 1, 1, 1); err == nil {
		t.Error("empty interval should fail")
	}
	if _, err := NewTruncatedNormal(0, 0.001, 50, 51); err == nil {
		t.Error("interval with no mass should fail")
	}
}

func TestTruncatedNormalQuantileEdges(t *testing.T) {
	tn, _ := NewTruncatedNormal(0.5, 0.2, 0, 1)
	if tn.Quantile(0) != 0 || tn.Quantile(1) != 1 {
		t.Errorf("quantile edges: %g %g", tn.Quantile(0), tn.Quantile(1))
	}
	if math.IsNaN(tn.Quantile(0.5)) {
		t.Error("median NaN")
	}
}
