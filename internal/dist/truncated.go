package dist

import (
	"fmt"
	"math"
	"math/rand"

	"prodpred/internal/stats"
)

// TruncatedNormal is a normal distribution restricted to [Lo, Hi] and
// renormalized. CPU availability and load fractions live in [0,1], so modal
// load models use truncated normals as mode shapes.
type TruncatedNormal struct {
	base   Normal
	lo, hi float64
	// cached normalization
	cdfLo, cdfHi float64
}

// NewTruncatedNormal constructs a normal N(mu, sigma^2) truncated to
// [lo, hi]. It requires sigma > 0, hi > lo, and non-vanishing probability
// mass inside the interval.
func NewTruncatedNormal(mu, sigma, lo, hi float64) (TruncatedNormal, error) {
	base, err := NewNormal(mu, sigma)
	if err != nil {
		return TruncatedNormal{}, err
	}
	if !(hi > lo) {
		return TruncatedNormal{}, fmt.Errorf("dist: invalid truncation range [%g,%g]", lo, hi)
	}
	cdfLo := base.CDF(lo)
	cdfHi := base.CDF(hi)
	if cdfHi-cdfLo < 1e-12 {
		return TruncatedNormal{}, fmt.Errorf("dist: truncation [%g,%g] leaves no mass for N(%g,%g)", lo, hi, mu, sigma)
	}
	return TruncatedNormal{base: base, lo: lo, hi: hi, cdfLo: cdfLo, cdfHi: cdfHi}, nil
}

// Base returns the untruncated normal.
func (t TruncatedNormal) Base() Normal { return t.base }

// Bounds returns the truncation interval.
func (t TruncatedNormal) Bounds() (lo, hi float64) { return t.lo, t.hi }

func (t TruncatedNormal) mass() float64 { return t.cdfHi - t.cdfLo }

// PDF implements Distribution.
func (t TruncatedNormal) PDF(x float64) float64 {
	if x < t.lo || x > t.hi {
		return 0
	}
	return t.base.PDF(x) / t.mass()
}

// CDF implements Distribution.
func (t TruncatedNormal) CDF(x float64) float64 {
	switch {
	case x < t.lo:
		return 0
	case x >= t.hi:
		return 1
	}
	return (t.base.CDF(x) - t.cdfLo) / t.mass()
}

// Quantile implements Distribution.
func (t TruncatedNormal) Quantile(p float64) float64 {
	if p <= 0 {
		return t.lo
	}
	if p >= 1 {
		return t.hi
	}
	return t.base.Quantile(t.cdfLo + p*t.mass())
}

// Mean implements Distribution, using the standard truncated-normal moment
// formula.
func (t TruncatedNormal) Mean() float64 {
	a := (t.lo - t.base.Mu) / t.base.Sigma
	b := (t.hi - t.base.Mu) / t.base.Sigma
	z := t.mass()
	return t.base.Mu + t.base.Sigma*(stats.NormalPDF(a)-stats.NormalPDF(b))/z
}

// Variance implements Distribution.
func (t TruncatedNormal) Variance() float64 {
	a := (t.lo - t.base.Mu) / t.base.Sigma
	b := (t.hi - t.base.Mu) / t.base.Sigma
	z := t.mass()
	pa, pb := stats.NormalPDF(a), stats.NormalPDF(b)
	term1 := 0.0
	// Guard the a*pdf(a) products at infinite bounds.
	if !math.IsInf(a, 0) {
		term1 += a * pa
	}
	if !math.IsInf(b, 0) {
		term1 -= b * pb
	}
	frac := (pa - pb) / z
	v := t.base.Sigma * t.base.Sigma * (1 + term1/z - frac*frac)
	if v < 0 {
		v = 0 // numerical floor
	}
	return v
}

// Sample implements Distribution by inverse-transform sampling, which is
// exact and branch-free (no rejection loop that could stall for narrow
// truncations).
func (t TruncatedNormal) Sample(rng *rand.Rand) float64 {
	x := t.Quantile(rng.Float64())
	// Clamp against quantile round-off at the extremes.
	if x < t.lo {
		x = t.lo
	}
	if x > t.hi {
		x = t.hi
	}
	return x
}
