package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prodpred/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// checkDistribution runs the generic contract checks shared by every
// distribution: CDF monotone in [0,1], PDF non-negative, quantile inverts
// CDF, and sample moments approach analytic moments.
func checkDistribution(t *testing.T, name string, d Distribution, probeLo, probeHi float64) {
	t.Helper()
	// CDF monotone and bounded.
	prev := -1.0
	for i := 0; i <= 100; i++ {
		x := probeLo + (probeHi-probeLo)*float64(i)/100
		c := d.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("%s: CDF(%g)=%g not monotone in [0,1]", name, x, c)
		}
		prev = c
		if d.PDF(x) < 0 {
			t.Fatalf("%s: PDF(%g)=%g negative", name, x, d.PDF(x))
		}
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		x := d.Quantile(p)
		if got := d.CDF(x); !almostEqual(got, p, 1e-6) {
			t.Errorf("%s: CDF(Quantile(%g))=%g", name, p, got)
		}
	}
	// Sample moments (skip infinite-moment distributions).
	if math.IsInf(d.Mean(), 0) || math.IsInf(d.Variance(), 0) {
		return
	}
	rng := rand.New(rand.NewSource(99))
	xs := SampleN(d, rng, 60000)
	m := stats.Mean(xs)
	sd := stats.StdDev(xs)
	wantSD := StdDev(d)
	if !almostEqual(m, d.Mean(), 0.05*(math.Abs(d.Mean())+wantSD)+1e-9) {
		t.Errorf("%s: sample mean %g vs analytic %g", name, m, d.Mean())
	}
	if !almostEqual(sd, wantSD, 0.08*wantSD+1e-9) {
		t.Errorf("%s: sample std %g vs analytic %g", name, sd, wantSD)
	}
}

func TestNormalContract(t *testing.T) {
	n, err := NewNormal(12, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "normal", n, 9, 15)
	if n.Mean() != 12 || !almostEqual(n.Variance(), 0.36, 1e-12) {
		t.Errorf("moments: %g %g", n.Mean(), n.Variance())
	}
	// Symmetry and mode.
	if !almostEqual(n.PDF(11), n.PDF(13), 1e-15) {
		t.Error("normal PDF not symmetric")
	}
	if n.CDF(12) != 0.5 {
		t.Errorf("CDF at mean = %g", n.CDF(12))
	}
	if s := n.String(); s != "12 ± 1.2" {
		t.Errorf("String()=%q", s)
	}
}

func TestNewNormalValidation(t *testing.T) {
	for _, c := range []struct{ mu, sigma float64 }{
		{0, 0}, {0, -1}, {math.NaN(), 1}, {math.Inf(1), 1}, {0, math.Inf(1)},
	} {
		if _, err := NewNormal(c.mu, c.sigma); err == nil {
			t.Errorf("NewNormal(%g,%g) should fail", c.mu, c.sigma)
		}
	}
}

func TestFitNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := Normal{Mu: 5.25, Sigma: 0.4}
	xs := SampleN(base, rng, 5000)
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Mu, 5.25, 0.05) || !almostEqual(fit.Sigma, 0.4, 0.03) {
		t.Errorf("fit=%+v", fit)
	}
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("FitNormal on 1 point should fail")
	}
	if _, err := FitNormal([]float64{2, 2, 2}); err == nil {
		t.Error("FitNormal on degenerate sample should fail")
	}
}

func TestLogNormalContract(t *testing.T) {
	l, err := NewLogNormal(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "lognormal", l, 0.01, 15)
	if l.PDF(-1) != 0 || l.PDF(0) != 0 || l.CDF(-1) != 0 {
		t.Error("lognormal support should be positive reals")
	}
	// Lognormal is right-skewed: mean > median.
	if l.Mean() <= l.Quantile(0.5) {
		t.Errorf("mean %g <= median %g", l.Mean(), l.Quantile(0.5))
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	l, err := LogNormalFromMoments(5.25, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Mean(), 5.25, 1e-9) {
		t.Errorf("mean=%g", l.Mean())
	}
	if !almostEqual(StdDev(l), 0.8, 1e-9) {
		t.Errorf("std=%g", StdDev(l))
	}
	if _, err := LogNormalFromMoments(-1, 1); err == nil {
		t.Error("negative mean should fail")
	}
	if _, err := LogNormalFromMoments(1, 0); err == nil {
		t.Error("zero std should fail")
	}
	if _, err := NewLogNormal(0, -1); err == nil {
		t.Error("negative sigmaLog should fail")
	}
}

func TestExponentialContract(t *testing.T) {
	e, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "exponential", e, 0, 20)
	if e.Mean() != 2 || e.Variance() != 4 {
		t.Errorf("moments: %g %g", e.Mean(), e.Variance())
	}
	if e.Quantile(0) != 0 || !math.IsInf(e.Quantile(1), 1) {
		t.Error("quantile edges wrong")
	}
	if e.PDF(-1) != 0 || e.CDF(-1) != 0 {
		t.Error("negative support should be zero")
	}
	if _, err := NewExponential(0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestUniformContract(t *testing.T) {
	u, err := NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "uniform", u, 1, 7)
	if u.Mean() != 4 || !almostEqual(u.Variance(), 16.0/12.0, 1e-12) {
		t.Errorf("moments: %g %g", u.Mean(), u.Variance())
	}
	if u.PDF(1.9) != 0 || u.PDF(6.1) != 0 || u.PDF(4) != 0.25 {
		t.Error("uniform PDF wrong")
	}
	if _, err := NewUniform(3, 3); err == nil {
		t.Error("empty range should fail")
	}
}

func TestParetoContract(t *testing.T) {
	p, err := NewPareto(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, "pareto", p, 1, 30)
	if !almostEqual(p.Mean(), 1.5, 1e-12) {
		t.Errorf("mean=%g", p.Mean())
	}
	if !almostEqual(p.Variance(), 0.75, 1e-12) {
		t.Errorf("variance=%g", p.Variance())
	}
	// Infinite-moment regimes.
	heavy := Pareto{Xm: 1, Alpha: 1}
	if !math.IsInf(heavy.Mean(), 1) {
		t.Error("alpha<=1 mean should be Inf")
	}
	mid := Pareto{Xm: 1, Alpha: 1.5}
	if !math.IsInf(mid.Variance(), 1) {
		t.Error("alpha<=2 variance should be Inf")
	}
	if p.PDF(0.5) != 0 || p.CDF(0.5) != 0 {
		t.Error("below xm should be zero")
	}
	if p.Quantile(0) != 1 || !math.IsInf(p.Quantile(1), 1) {
		t.Error("quantile edges wrong")
	}
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("zero xm should fail")
	}
	if _, err := NewPareto(1, 0); err == nil {
		t.Error("zero alpha should fail")
	}
}

func TestParetoSampleNeverBelowXm(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 0.8}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10000; i++ {
		if x := p.Sample(rng); x < 2 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("sample %d = %g", i, x)
		}
	}
}

func TestSampleNLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := SampleN(Normal{Mu: 0, Sigma: 1}, rng, 17)
	if len(xs) != 17 {
		t.Errorf("len=%d", len(xs))
	}
	if len(SampleN(Normal{Mu: 0, Sigma: 1}, rng, 0)) != 0 {
		t.Error("n=0 should give empty slice")
	}
}

func TestSamplingIsDeterministic(t *testing.T) {
	a := SampleN(Normal{Mu: 3, Sigma: 1}, rand.New(rand.NewSource(7)), 10)
	b := SampleN(Normal{Mu: 3, Sigma: 1}, rand.New(rand.NewSource(7)), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// Property: for any valid normal, quantile/CDF round-trip across the body of
// the distribution.
func TestNormalQuantileRoundTripProperty(t *testing.T) {
	f := func(muRaw, sigmaRaw, pRaw float64) bool {
		if math.IsNaN(muRaw) || math.IsInf(muRaw, 0) {
			return true
		}
		mu := math.Mod(muRaw, 1e6)
		sigma := 0.01 + math.Abs(math.Mod(sigmaRaw, 100))
		p := 0.001 + 0.998*math.Abs(math.Mod(pRaw, 1))
		n := Normal{Mu: mu, Sigma: sigma}
		x := n.Quantile(p)
		return almostEqual(n.CDF(x), p, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
