package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mixture is a finite mixture of component distributions with non-negative
// weights summing to 1. Multi-modal CPU load (paper §2.1.2, Figures 5 and
// 10) is modeled as a mixture whose components are the modes.
type Mixture struct {
	components []Distribution
	weights    []float64
}

// NewMixture builds a mixture from parallel component and weight slices.
// Weights must be non-negative and sum to a positive value; they are
// normalized to 1.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, errors.New("dist: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, errors.New("dist: mixture component/weight length mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: invalid mixture weight %g", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("dist: mixture weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    norm,
	}, nil
}

// Components returns the component distributions. Callers must not modify
// the returned slice.
func (m *Mixture) Components() []Distribution { return m.components }

// Weights returns the normalized weights. Callers must not modify the
// returned slice.
func (m *Mixture) Weights() []float64 { return m.weights }

// K returns the number of components.
func (m *Mixture) K() int { return len(m.components) }

// PDF implements Distribution.
func (m *Mixture) PDF(x float64) float64 {
	var f float64
	for i, c := range m.components {
		f += m.weights[i] * c.PDF(x)
	}
	return f
}

// CDF implements Distribution.
func (m *Mixture) CDF(x float64) float64 {
	var f float64
	for i, c := range m.components {
		f += m.weights[i] * c.CDF(x)
	}
	return f
}

// Quantile implements Distribution via bisection on the mixture CDF, which
// is monotone. Accuracy is ~1e-10 relative to the bracketing interval.
func (m *Mixture) Quantile(p float64) float64 {
	if p <= 0 {
		p = 1e-12
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	// Bracket using component quantiles.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		cl := c.Quantile(1e-9)
		ch := c.Quantile(1 - 1e-9)
		if cl < lo {
			lo = cl
		}
		if ch > hi {
			hi = ch
		}
	}
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || !(hi > lo) {
		// Fall back to a wide fixed bracket around the mean.
		mu := m.Mean()
		sd := math.Sqrt(m.Variance())
		if sd == 0 || math.IsNaN(sd) {
			sd = math.Abs(mu) + 1
		}
		lo, hi = mu-20*sd, mu+20*sd
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// Mean implements Distribution.
func (m *Mixture) Mean() float64 {
	var mu float64
	for i, c := range m.components {
		mu += m.weights[i] * c.Mean()
	}
	return mu
}

// Variance implements Distribution using the law of total variance.
func (m *Mixture) Variance() float64 {
	mu := m.Mean()
	var v float64
	for i, c := range m.components {
		cm := c.Mean()
		v += m.weights[i] * (c.Variance() + (cm-mu)*(cm-mu))
	}
	return v
}

// Sample implements Distribution: pick a component by weight, then sample it.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	return m.components[m.PickComponent(rng)].Sample(rng)
}

// PickComponent returns a component index drawn according to the mixture
// weights. Exposed so Markov-modulated load processes can reuse the weights
// as stationary mode probabilities.
func (m *Mixture) PickComponent(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range m.weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(m.weights) - 1 // round-off guard
}

// SortedByMean returns a copy of the mixture with components ordered by
// ascending mean, convenient for labeling modes the way the paper does
// ("the center mode").
func (m *Mixture) SortedByMean() *Mixture {
	idx := make([]int, m.K())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return m.components[idx[a]].Mean() < m.components[idx[b]].Mean()
	})
	comps := make([]Distribution, m.K())
	ws := make([]float64, m.K())
	for i, j := range idx {
		comps[i] = m.components[j]
		ws[i] = m.weights[j]
	}
	out, err := NewMixture(comps, ws)
	if err != nil {
		// Cannot happen: inputs came from a valid mixture.
		panic(err)
	}
	return out
}
