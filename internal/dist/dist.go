// Package dist provides the continuous distribution families the
// reproduction needs: Normal (the paper's workhorse summary), LogNormal and
// Pareto (long-tailed system data, §2.1.1), Exponential and Uniform
// (workload generation), truncated normals (CPU availability is confined to
// [0,1]), and finite mixtures (multi-modal load, §2.1.2).
//
// Every distribution exposes PDF, CDF, Quantile, moments, and seeded
// sampling via *rand.Rand so experiments are reproducible.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"prodpred/internal/stats"
)

// Distribution is a one-dimensional continuous distribution.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in (0,1).
	Quantile(p float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Variance returns the distribution variance.
	Variance() float64
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
}

// StdDev returns the standard deviation of d.
func StdDev(d Distribution) float64 { return math.Sqrt(d.Variance()) }

// SampleN draws n variates from d using rng.
func SampleN(d Distribution, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Normal is the normal distribution N(Mu, Sigma^2), Sigma > 0.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal constructs a Normal, validating sigma > 0.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !(sigma > 0) || math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsInf(sigma, 0) {
		return Normal{}, fmt.Errorf("dist: invalid normal parameters mu=%g sigma=%g", mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// FitNormal fits a normal distribution to xs by maximum likelihood
// (sample mean, population standard deviation). It fails on samples of
// fewer than two distinct values.
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) < 2 {
		return Normal{}, errors.New("dist: FitNormal needs at least 2 observations")
	}
	mu := stats.Mean(xs)
	sigma := math.Sqrt(stats.PopVariance(xs))
	if sigma == 0 {
		return Normal{}, errors.New("dist: FitNormal on a degenerate sample")
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// PDF implements Distribution.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (n Normal) CDF(x float64) float64 {
	return stats.NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Distribution.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*stats.NormalQuantile(p)
}

// Mean implements Distribution.
func (n Normal) Mean() float64 { return n.Mu }

// Variance implements Distribution.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Sample implements Distribution.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// String renders the distribution in the paper's "X ± a" notation, where a
// is two standard deviations.
func (n Normal) String() string {
	return fmt.Sprintf("%.4g ± %.4g", n.Mu, 2*n.Sigma)
}

// LogNormal is the distribution of exp(N(MuLog, SigmaLog^2)): the canonical
// long-tailed model for durations and transfer times.
type LogNormal struct {
	MuLog    float64
	SigmaLog float64
}

// NewLogNormal constructs a LogNormal, validating sigmaLog > 0.
func NewLogNormal(muLog, sigmaLog float64) (LogNormal, error) {
	if !(sigmaLog > 0) || math.IsNaN(muLog) || math.IsInf(muLog, 0) {
		return LogNormal{}, fmt.Errorf("dist: invalid lognormal parameters %g %g", muLog, sigmaLog)
	}
	return LogNormal{MuLog: muLog, SigmaLog: sigmaLog}, nil
}

// LogNormalFromMoments returns the LogNormal with the given mean and
// standard deviation (both > 0) in linear space.
func LogNormalFromMoments(mean, std float64) (LogNormal, error) {
	if !(mean > 0) || !(std > 0) {
		return LogNormal{}, errors.New("dist: lognormal moments must be positive")
	}
	cv2 := (std / mean) * (std / mean)
	sigma2 := math.Log(1 + cv2)
	return LogNormal{
		MuLog:    math.Log(mean) - sigma2/2,
		SigmaLog: math.Sqrt(sigma2),
	}, nil
}

// PDF implements Distribution.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.MuLog) / l.SigmaLog
	return math.Exp(-z*z/2) / (x * l.SigmaLog * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stats.NormalCDF((math.Log(x) - l.MuLog) / l.SigmaLog)
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.MuLog + l.SigmaLog*stats.NormalQuantile(p))
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2)
}

// Variance implements Distribution.
func (l LogNormal) Variance() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return (math.Exp(s2) - 1) * math.Exp(2*l.MuLog+s2)
}

// Sample implements Distribution.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.MuLog + l.SigmaLog*rng.NormFloat64())
}

// Exponential is the exponential distribution with the given Rate > 0.
type Exponential struct {
	Rate float64
}

// NewExponential constructs an Exponential, validating rate > 0.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("dist: invalid exponential rate %g", rate)
	}
	return Exponential{Rate: rate}, nil
}

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / e.Rate
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Variance implements Distribution.
func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform constructs a Uniform, validating hi > lo.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(hi > lo) {
		return Uniform{}, fmt.Errorf("dist: invalid uniform range [%g,%g]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// PDF implements Distribution.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x < u.Lo:
		return 0
	case x > u.Hi:
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance implements Distribution.
func (u Uniform) Variance() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and shape
// Alpha > 0 — the textbook heavy tail.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// NewPareto constructs a Pareto, validating xm > 0 and alpha > 0.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if !(xm > 0) || !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: invalid pareto parameters xm=%g alpha=%g", xm, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// PDF implements Distribution.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// CDF implements Distribution.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Distribution.
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Xm
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean implements Distribution. It is +Inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Variance implements Distribution. It is +Inf for Alpha <= 2.
func (p Pareto) Variance() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// Sample implements Distribution.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	// Inverse transform on 1-U (U in [0,1)), avoiding a zero denominator.
	return p.Xm / math.Pow(1-rng.Float64(), 1/p.Alpha)
}
