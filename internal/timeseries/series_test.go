package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAppendAndAccessors(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 5; i++ {
		if err := s.Append(float64(i), float64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len=%d", s.Len())
	}
	if p := s.At(2); p.T != 2 || p.V != 20 {
		t.Errorf("At(2)=%+v", p)
	}
	if vs := s.Values(); len(vs) != 5 || vs[3] != 30 {
		t.Errorf("Values=%v", vs)
	}
	if ts := s.Times(); ts[4] != 4 {
		t.Errorf("Times=%v", ts)
	}
	t0, t1, ok := s.Span()
	if !ok || t0 != 0 || t1 != 4 {
		t.Errorf("Span=%g,%g,%v", t0, t1, ok)
	}
	if _, _, ok := NewSeries(0).Span(); ok {
		t.Error("empty span should be !ok")
	}
}

func TestSeriesRejectsNonMonotonic(t *testing.T) {
	s := NewSeries(0)
	if err := s.Append(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(4, 1); err == nil {
		t.Error("decreasing timestamp should fail")
	}
	// Equal timestamps are allowed (sensor reporting at the same tick).
	if err := s.Append(5, 2); err != nil {
		t.Errorf("equal timestamp should be ok: %v", err)
	}
}

func TestFromSlices(t *testing.T) {
	s, err := FromSlices([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil || s.Len() != 3 {
		t.Fatalf("FromSlices err=%v len=%d", err, s.Len())
	}
	if _, err := FromSlices([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch should fail")
	}
	if _, err := FromSlices([]float64{2, 1}, []float64{0, 0}); err == nil {
		t.Error("unordered times should fail")
	}
}

func TestWindow(t *testing.T) {
	s, _ := FromSlices([]float64{0, 1, 2, 3, 4}, []float64{5, 6, 7, 8, 9})
	got := s.Window(1, 3)
	if len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("Window=%v", got)
	}
	if got := s.Window(10, 20); len(got) != 0 {
		t.Errorf("empty window=%v", got)
	}
	if got := s.Window(-5, 100); len(got) != 5 {
		t.Errorf("full window=%v", got)
	}
}

func TestValueAt(t *testing.T) {
	s, _ := FromSlices([]float64{1, 3, 5}, []float64{10, 30, 50})
	if _, ok := s.ValueAt(0.5); ok {
		t.Error("before first point should be !ok")
	}
	cases := []struct{ t, want float64 }{{1, 10}, {2.9, 10}, {3, 30}, {4, 30}, {99, 50}}
	for _, c := range cases {
		v, ok := s.ValueAt(c.t)
		if !ok || v != c.want {
			t.Errorf("ValueAt(%g)=%g,%v want %g", c.t, v, ok, c.want)
		}
	}
}

func TestResample(t *testing.T) {
	s, _ := FromSlices([]float64{0, 10}, []float64{1, 2})
	r, err := s.Resample(0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantT := []float64{0, 5, 10, 15, 20}
	wantV := []float64{1, 1, 2, 2, 2}
	if r.Len() != len(wantT) {
		t.Fatalf("resampled len=%d", r.Len())
	}
	for i := range wantT {
		if p := r.At(i); p.T != wantT[i] || p.V != wantV[i] {
			t.Errorf("point %d = %+v want {%g %g}", i, p, wantT[i], wantV[i])
		}
	}
	if _, err := s.Resample(0, 1, 0); err == nil {
		t.Error("dt=0 should fail")
	}
	if _, err := s.Resample(5, 1, 1); err == nil {
		t.Error("reversed range should fail")
	}
	// Resampling starting before the first observation skips leading ticks.
	r2, err := s.Resample(-10, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 || r2.At(0).T != 0 {
		t.Errorf("leading ticks not skipped: len=%d", r2.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s, _ := FromSlices([]float64{0, 1.5, 2.25}, []float64{0.1, -3, 42})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("len=%d want %d", back.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if back.At(i) != s.At(i) {
			t.Errorf("point %d: %+v vs %+v", i, back.At(i), s.At(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("time,value\nx,1\n")); err == nil {
		t.Error("bad time should fail")
	}
	if _, err := ReadCSV(strings.NewReader("time,value\n1,y\n")); err == nil {
		t.Error("bad value should fail")
	}
	if _, err := ReadCSV(strings.NewReader("time,value\n2,1\n1,1\n")); err == nil {
		t.Error("unordered rows should fail")
	}
}

func TestRingBasics(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Error("empty Last should be !ok")
	}
	r.Push(1, 10)
	r.Push(2, 20)
	if last, ok := r.Last(); !ok || last.V != 20 {
		t.Errorf("Last=%+v,%v", last, ok)
	}
	r.Push(3, 30)
	r.Push(4, 40) // evicts (1,10)
	if r.Len() != 3 {
		t.Fatalf("len=%d", r.Len())
	}
	want := []float64{20, 30, 40}
	got := r.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Values=%v want %v", got, want)
		}
	}
	if p := r.At(0); p.T != 2 {
		t.Errorf("oldest=%+v", p)
	}
}

func TestRingTail(t *testing.T) {
	r, _ := NewRing(5)
	for i := 1; i <= 7; i++ {
		r.Push(float64(i), float64(i))
	}
	got := r.Tail(3)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("Tail(3)=%v", got)
	}
	if got := r.Tail(100); len(got) != 5 {
		t.Errorf("Tail(100)=%v", got)
	}
	if got := r.Tail(-1); len(got) != 0 {
		t.Errorf("Tail(-1)=%v", got)
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := NewRing(-2); err == nil {
		t.Error("negative size should fail")
	}
}

// Property: a ring holds exactly the last min(n, cap) pushed values in
// order.
func TestRingRetentionProperty(t *testing.T) {
	f := func(valsRaw []float64, capRaw uint8) bool {
		size := int(capRaw%20) + 1
		r, err := NewRing(size)
		if err != nil {
			return false
		}
		for i, v := range valsRaw {
			r.Push(float64(i), v)
		}
		want := valsRaw
		if len(want) > size {
			want = want[len(want)-size:]
		}
		got := r.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResampleNoDriftOnLongRanges(t *testing.T) {
	// Regression: t += dt accumulation dropped the final sample on long
	// ranges with non-representable steps (e.g. [0,3000] at dt=0.3).
	s, _ := FromSlices([]float64{0}, []float64{1})
	r, err := s.Resample(0, 3000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10001 {
		t.Errorf("resampled len=%d want 10001", r.Len())
	}
	r, err = s.Resample(100, 400, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3001 {
		t.Errorf("resampled len=%d want 3001", r.Len())
	}
	last := r.At(r.Len() - 1).T
	if math.Abs(last-400) > 1e-9 {
		t.Errorf("last sample T=%.15g want ~400", last)
	}
}
