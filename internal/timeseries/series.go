// Package timeseries provides timestamped measurement series: append-only
// series, bounded ring-buffer histories (the storage behind the NWS
// sensors), sliding windows, resampling, and CSV interchange.
//
// Time is virtual simulation time in float64 seconds, matching the
// discrete-event clock in internal/simenv; nothing here touches wall-clock
// time.
package timeseries

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Point is one timestamped measurement.
type Point struct {
	T float64 // seconds of virtual time
	V float64
}

// Series is an append-only measurement series ordered by time.
type Series struct {
	pts []Point
}

// NewSeries returns an empty series with the given capacity hint.
func NewSeries(capHint int) *Series {
	if capHint < 0 {
		capHint = 0
	}
	return &Series{pts: make([]Point, 0, capHint)}
}

// FromSlices builds a series from parallel time/value slices, which must be
// equal-length and time-ordered.
func FromSlices(ts, vs []float64) (*Series, error) {
	if len(ts) != len(vs) {
		return nil, errors.New("timeseries: slice length mismatch")
	}
	s := NewSeries(len(ts))
	for i := range ts {
		if err := s.Append(ts[i], vs[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Append adds a measurement; timestamps must be non-decreasing.
func (s *Series) Append(t, v float64) error {
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		return fmt.Errorf("timeseries: non-monotonic timestamp %g after %g", t, s.pts[n-1].T)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	return nil
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th point.
func (s *Series) At(i int) Point { return s.pts[i] }

// Values returns a copy of the measurement values in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.V
	}
	return out
}

// Times returns a copy of the timestamps in order.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.T
	}
	return out
}

// Span returns the first and last timestamps; ok is false for an empty
// series.
func (s *Series) Span() (t0, t1 float64, ok bool) {
	if len(s.pts) == 0 {
		return 0, 0, false
	}
	return s.pts[0].T, s.pts[len(s.pts)-1].T, true
}

// Window returns the values with timestamps in the half-open interval
// [from, to).
func (s *Series) Window(from, to float64) []float64 {
	lo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= from })
	hi := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= to })
	out := make([]float64, 0, hi-lo)
	for _, p := range s.pts[lo:hi] {
		out = append(out, p.V)
	}
	return out
}

// ValueAt returns the measurement in force at time t: the value of the
// latest point with timestamp <= t. ok is false before the first point.
func (s *Series) ValueAt(t float64) (v float64, ok bool) {
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.pts[i-1].V, true
}

// Resample returns the series sampled every dt from t0 to t1 inclusive
// using last-observation-carried-forward, the convention for load signals
// reported at fixed sensor intervals.
func (s *Series) Resample(t0, t1, dt float64) (*Series, error) {
	if dt <= 0 {
		return nil, errors.New("timeseries: non-positive resample step")
	}
	if t1 < t0 {
		return nil, errors.New("timeseries: resample range reversed")
	}
	// Iterate on an integer step index: accumulating t += dt drifts for
	// non-representable steps like 0.1 and can skip or duplicate the final
	// sample on long ranges.
	n := int(math.Floor((t1-t0)/dt + 1e-9))
	out := NewSeries(n + 1)
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		v, ok := s.ValueAt(t)
		if !ok {
			continue
		}
		if err := out.Append(t, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteCSV writes "time,value" rows (with a header) to w.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "value"}); err != nil {
		return err
	}
	for _, p := range s.pts {
		rec := []string{
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a series written by WriteCSV.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, errors.New("timeseries: empty CSV")
	}
	s := NewSeries(len(recs) - 1)
	for i, rec := range recs {
		if i == 0 {
			continue // header
		}
		if len(rec) != 2 {
			return nil, fmt.Errorf("timeseries: row %d has %d fields", i, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d time: %w", i, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d value: %w", i, err)
		}
		if err := s.Append(t, v); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Ring is a bounded measurement history that discards the oldest point when
// full — the storage discipline of an NWS sensor.
type Ring struct {
	buf   []Point
	start int
	n     int
}

// NewRing returns a ring holding at most size points; size must be positive.
func NewRing(size int) (*Ring, error) {
	if size <= 0 {
		return nil, errors.New("timeseries: ring size must be positive")
	}
	return &Ring{buf: make([]Point, size)}, nil
}

// Push appends a measurement, evicting the oldest if the ring is full.
func (r *Ring) Push(t, v float64) {
	idx := (r.start + r.n) % len(r.buf)
	r.buf[idx] = Point{T: t, V: v}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.start = (r.start + 1) % len(r.buf)
	}
}

// Len returns the number of stored points.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// At returns the i-th stored point, oldest first.
func (r *Ring) At(i int) Point {
	return r.buf[(r.start+i)%len(r.buf)]
}

// Last returns the most recent point; ok is false when empty.
func (r *Ring) Last() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.At(r.n - 1), true
}

// Values returns the stored values oldest-first.
func (r *Ring) Values() []float64 {
	out := make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i).V
	}
	return out
}

// Tail returns the most recent k values oldest-first (all values when
// k >= Len).
func (r *Ring) Tail(k int) []float64 {
	if k > r.n {
		k = r.n
	}
	if k < 0 {
		k = 0
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = r.At(r.n - k + i).V
	}
	return out
}
