package predict_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"prodpred/internal/faults"
	"prodpred/internal/predict"
	"prodpred/internal/stochastic"
)

// stressInjector schedules every fault class: drops and spikes everywhere,
// transients, and an outage window on machine 0 that the stress rounds
// advance straight through.
func stressInjector(t *testing.T, seed int64, machines int) *faults.Injector {
	t.Helper()
	in := faults.NewInjector(seed)
	for m := 0; m < machines; m++ {
		s := faults.Schedule{DropProb: 0.2, TransientProb: 0.02, SpikeProb: 0.05, SpikeFactor: 4}
		if m == 0 {
			s.Outages = []faults.Window{{Start: 150, End: 260}}
		}
		if err := in.Set(m, s); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// runStressRounds fires `workers` parallel Predict calls per round against
// one service while the clock advances between rounds and faults are
// injected throughout. Returns the per-round, per-worker predictions.
func runStressRounds(t *testing.T, seed int64, rounds, workers int) ([][]stochastic.Value, *predict.Service) {
	t.Helper()
	svc := burstyService(t, seed, 100, stressInjector(t, seed, 4))
	req := baseRequest()
	out := make([][]stochastic.Value, rounds)
	for r := range out {
		out[r] = make([]stochastic.Value, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pred, err := svc.Predict(req)
				if err != nil {
					t.Errorf("round %d worker %d: %v", r, w, err)
					return
				}
				out[r][w] = pred.Value
			}(w)
		}
		wg.Wait()
		if err := svc.Advance(37); err != nil {
			t.Fatal(err)
		}
	}
	return out, svc
}

// TestConcurrentPredictDeterministic is the -race stress test: parallel
// Predict calls against one Service while the clock advances and sensor
// faults are injected must (a) agree within a round — every call at the
// same virtual time sees the same monitor state — and (b) be bit-identical
// across two same-seed services, because sensors and fault decisions are
// pure functions of virtual time.
func TestConcurrentPredictDeterministic(t *testing.T) {
	const rounds, workers = 6, 8
	a, svcA := runStressRounds(t, 21, rounds, workers)
	b, _ := runStressRounds(t, 21, rounds, workers)
	for r := 0; r < rounds; r++ {
		for w := 1; w < workers; w++ {
			if a[r][w] != a[r][0] {
				t.Errorf("round %d: worker %d diverged: %v vs %v", r, w, a[r][w], a[r][0])
			}
		}
		if a[r][0] != b[r][0] {
			t.Errorf("round %d: runs diverged: %v vs %v", r, a[r][0], b[r][0])
		}
	}
	// The outage window (150-260) sits inside the advanced range
	// (100..322), so the fault machinery demonstrably fired.
	missed := 0
	for _, g := range svcA.CPUGaps() {
		missed += g.Missed
	}
	if missed == 0 {
		t.Error("stress run injected no measurement gaps")
	}
}

// TestConcurrentMixedOps hammers every public method from many goroutines
// purely for the race detector: predictions, reports, gap counters, and
// clock advances interleaving freely must be data-race-free and deadlock-
// free (determinism is not asserted here — the clock moves mid-flight).
func TestConcurrentMixedOps(t *testing.T) {
	svc := burstyService(t, 33, 100, stressInjector(t, 33, 4))
	req := baseRequest()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p, err := svc.Predict(req)
				if err != nil {
					t.Errorf("predict: %v", err)
					continue
				}
				// Immediately close the loop on our own prediction, racing
				// the other observers and the clock.
				if _, err := svc.Observe(p.ID, p.Value.Mean); err != nil {
					t.Errorf("observe: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := svc.Advance(13); err != nil {
				t.Errorf("advance: %v", err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			svc.Reports()
			svc.CPUGaps()
			svc.BWGaps()
			svc.Now()
			svc.Accuracy()
			svc.Outstanding()
		}
	}()
	wg.Wait()
	gaps := svc.CPUGaps()
	total := 0
	for _, g := range gaps {
		total += g.Missed
	}
	if total == 0 {
		t.Error("stress run injected no measurement gaps")
	}
}

// TestConcurrentObservePredictDeterministic closes the loop under -race:
// every round fans out parallel Predict calls, then observes each returned
// prediction in ID order with a deterministic synthetic runtime. Same seed
// + same observation order must leave two services with byte-identical
// calibration state, and the calibrated intervals themselves must agree.
func TestConcurrentObservePredictDeterministic(t *testing.T) {
	const rounds, workers = 5, 8
	run := func() (string, []stochastic.Value) {
		svc := burstyService(t, 29, 100, stressInjector(t, 29, 4))
		req := baseRequest()
		var vals []stochastic.Value
		for r := 0; r < rounds; r++ {
			preds := make([]predict.Prediction, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p, err := svc.Predict(req)
					if err != nil {
						t.Errorf("round %d worker %d: %v", r, w, err)
						return
					}
					preds[w] = p
				}(w)
			}
			wg.Wait()
			// Fix the observation order: ascending prediction ID. Which
			// goroutine drew which ID is scheduler-dependent, but the ID
			// sequence (and each prediction's value at this virtual time)
			// is not.
			sort.Slice(preds, func(i, j int) bool { return preds[i].ID < preds[j].ID })
			for _, p := range preds {
				// Synthetic runtime biased off the mean so the calibrator
				// has a real error signal to work with.
				actual := p.Raw.Mean * (1.02 + 0.05*float64(r))
				if _, err := svc.Observe(p.ID, actual); err != nil {
					t.Fatal(err)
				}
				vals = append(vals, p.Value)
			}
			if err := svc.Advance(37); err != nil {
				t.Fatal(err)
			}
		}
		return fmt.Sprintf("%#v", svc.Accuracy()), vals
	}
	stateA, valsA := run()
	stateB, valsB := run()
	if stateA != stateB {
		t.Errorf("same-seed calibration state diverged:\n%s\nvs\n%s", stateA, stateB)
	}
	for i := range valsA {
		if valsA[i] != valsB[i] {
			t.Errorf("prediction %d diverged: %v vs %v", i, valsA[i], valsB[i])
		}
	}
	// After MinObserved outcomes the calibrator must actually have moved
	// off the identity scale — otherwise this test proves nothing.
	if !strings.Contains(stateA, "Observed:40") {
		t.Errorf("state did not record all outcomes: %s", stateA)
	}
}
