package predict

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/obs"
	"prodpred/internal/workload"
)

// PlatformSpec is the declarative, JSON-serializable description of one
// tenant platform: machines, link, load processes, fault schedules, and
// calibration config. It is everything needed to (re)build a Service —
// the registry instantiates cold specs lazily on first request, and the
// snapshot format embeds each platform's spec so restore can rebuild the
// static structure and import only dynamic state on top.
//
// Determinism contract: Build is a pure function of the spec, and every
// load process and fault decision it wires up is a pure function of
// (seed, virtual time). Two services built from equal specs and advanced
// through the same clock schedule are bit-identical.
type PlatformSpec struct {
	// Name is the platform (tenant) identifier requests route on.
	Name string `json:"name"`
	// Machines describes the compute nodes, in index order.
	Machines []MachineSpec `json:"machines"`
	// Link is the shared interconnect; nil means 10 Mbit shared ethernet
	// (the paper's platform interconnect).
	Link *LinkSpec `json:"link,omitempty"`
	// CPU holds one load-process spec per machine; empty means light load
	// everywhere. A single entry is broadcast to every machine.
	CPU []LoadSpec `json:"cpu,omitempty"`
	// Net is the network contention process; nil means a contention-free
	// (constant, unmonitored) network.
	Net *LoadSpec `json:"net,omitempty"`
	// Seed is the platform's base random seed. Load specs with Seed 0
	// derive theirs from it (Seed + machine index; Seed + 999 for Net).
	Seed int64 `json:"seed"`
	// Period is the sensor cadence in virtual seconds (nws.DefaultPeriod
	// when 0); History the monitor ring size (512 when 0).
	Period  float64 `json:"period,omitempty"`
	History int     `json:"history,omitempty"`
	// Warmup is how many virtual seconds of measurements to take at
	// instantiation before the service answers its first request.
	Warmup float64 `json:"warmup,omitempty"`
	// FaultSeed seeds the fault injector when Faults is non-empty (Seed
	// when 0).
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Faults holds per-machine sensor-fault schedules.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Calibration overrides the online-calibrator defaults.
	Calibration *CalibrationSpec `json:"calibration,omitempty"`
	// DisableTickCache turns off the tick-scoped forecast cache (see
	// Config.DisableTickCache).
	DisableTickCache bool `json:"disable_tick_cache,omitempty"`
}

// MachineSpec names one machine, either by catalog kind — "sparc2",
// "sparc5", "sparc10", "ultra" (the paper's benchmarked machine classes) —
// or by explicit rate/memory numbers when Kind is empty.
type MachineSpec struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind,omitempty"`
	ElemRate float64 `json:"elem_rate,omitempty"`
	MemoryMB float64 `json:"memory_mb,omitempty"`
}

func (m MachineSpec) build() (cluster.Machine, error) {
	switch m.Kind {
	case "sparc2":
		return cluster.Sparc2(m.Name), nil
	case "sparc5":
		return cluster.Sparc5(m.Name), nil
	case "sparc10":
		return cluster.Sparc10(m.Name), nil
	case "ultra":
		return cluster.UltraSparc(m.Name), nil
	case "":
		if !(m.ElemRate > 0) || !(m.MemoryMB > 0) {
			return cluster.Machine{}, fmt.Errorf("predict: machine %q needs a kind or positive elem_rate/memory_mb", m.Name)
		}
		return cluster.Machine{Name: m.Name, ElemRate: m.ElemRate, MemoryMB: m.MemoryMB}, nil
	default:
		return cluster.Machine{}, fmt.Errorf("predict: unknown machine kind %q", m.Kind)
	}
}

// LinkSpec describes the shared interconnect.
type LinkSpec struct {
	// DedBW is the dedicated bandwidth in bytes/s; Latency the one-way
	// latency in seconds.
	DedBW   float64 `json:"ded_bw"`
	Latency float64 `json:"latency,omitempty"`
}

// LoadSpec describes one load process. Kind selects the generator; the
// remaining fields parameterize it (unused fields are ignored). Presets
// ("light", "platform1-center", "platform1-trimodal", "platform2-bursty",
// "ethernet-contention") need only a seed.
type LoadSpec struct {
	// Kind is one of: constant, light, platform1-center,
	// platform1-trimodal, platform2-bursty, ethernet-contention,
	// single-mode, markov-modal, user-sessions, long-tailed, congested,
	// scenario, trace.
	Kind string `json:"kind"`
	// Seed seeds the process; 0 derives a seed from the platform seed and
	// the machine index.
	Seed int64 `json:"seed,omitempty"`

	// Constant.
	Level float64 `json:"level,omitempty"`
	// SingleMode / shared AR(1) shape.
	Mean  float64 `json:"mean,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	Phi   float64 `json:"phi,omitempty"`
	DT    float64 `json:"dt,omitempty"`
	// MarkovModal.
	Modes      []ModeSpec `json:"modes,omitempty"`
	Weights    []float64  `json:"weights,omitempty"`
	SwitchProb float64    `json:"switch_prob,omitempty"`
	// UserSessions.
	Lambda float64 `json:"lambda,omitempty"`
	Mu     float64 `json:"mu,omitempty"`
	// LongTailed / Congested.
	Peak      float64 `json:"peak,omitempty"`
	DropMean  float64 `json:"drop_mean,omitempty"`
	DropStd   float64 `json:"drop_std,omitempty"`
	BaseMean  float64 `json:"base_mean,omitempty"`
	BaseStd   float64 `json:"base_std,omitempty"`
	BurstProb float64 `json:"burst_prob,omitempty"`
	BurstMean float64 `json:"burst_mean,omitempty"`
	BurstStd  float64 `json:"burst_std,omitempty"`
	// Scenario names a workload-library scenario (kind "scenario");
	// Machine picks the scenario's component entry. When a single
	// scenario spec is broadcast across a platform's machines, Machine is
	// assigned per machine automatically.
	Scenario string `json:"scenario,omitempty"`
	Machine  int    `json:"machine,omitempty"`
	// Path locates a recorded trace file (kind "trace").
	Path string `json:"path,omitempty"`
}

// ModeSpec is one availability mode of a markov-modal load.
type ModeSpec struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

// build materializes the process, with defaultSeed used when Seed is 0.
func (l LoadSpec) build(defaultSeed int64) (load.Process, error) {
	seed := l.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	dt := l.DT
	if dt == 0 {
		dt = 1.0
	}
	switch l.Kind {
	case "constant":
		return load.NewConstant(l.Level), nil
	case "light":
		return load.LightLoad(seed)
	case "platform1-center":
		return load.Platform1CenterMode(seed)
	case "platform1-trimodal":
		return load.Platform1TriModal(seed)
	case "platform2-bursty":
		return load.Platform2FourModeBursty(seed)
	case "ethernet-contention":
		return load.EthernetContention(seed)
	case "single-mode":
		return load.NewSingleMode(l.Mean, l.Sigma, l.Phi, dt, seed)
	case "markov-modal":
		modes := make([]load.ModeSpec, len(l.Modes))
		for i, m := range l.Modes {
			modes[i] = load.ModeSpec{Mean: m.Mean, Sigma: m.Sigma}
		}
		return load.NewMarkovModal(modes, l.Weights, l.SwitchProb, l.Phi, dt, seed)
	case "user-sessions":
		return load.NewUserSessions(l.Lambda, l.Mu, dt, seed)
	case "long-tailed":
		return load.NewLongTailed(l.Peak, l.DropMean, l.DropStd, dt, seed)
	case "congested":
		return load.NewCongested(l.Peak, l.BaseMean, l.BaseStd, l.BurstProb, l.BurstMean, l.BurstStd, dt, seed)
	case "scenario":
		sc, err := l.scenario()
		if err != nil {
			return nil, err
		}
		return sc.Machine(l.Machine, seed)
	case "trace":
		if l.Path == "" {
			return nil, errors.New("predict: trace load spec missing path")
		}
		f, err := os.Open(l.Path)
		if err != nil {
			return nil, fmt.Errorf("predict: trace load: %w", err)
		}
		defer f.Close()
		h, vals, err := workload.ReadTrace(f)
		if err != nil {
			return nil, fmt.Errorf("predict: trace load %q: %w", l.Path, err)
		}
		return workload.TraceProcess(h, vals)
	case "":
		return nil, errors.New("predict: load spec missing kind")
	default:
		return nil, fmt.Errorf("predict: unknown load kind %q", l.Kind)
	}
}

// scenario resolves the spec's workload-library scenario.
func (l LoadSpec) scenario() (*workload.ScenarioSpec, error) {
	if l.Scenario == "" {
		return nil, errors.New("predict: scenario load spec missing scenario name")
	}
	sc, ok := workload.Lookup(l.Scenario)
	if !ok {
		return nil, fmt.Errorf("predict: unknown workload scenario %q (have %v)", l.Scenario, workload.Names())
	}
	if l.Machine < 0 {
		return nil, fmt.Errorf("predict: scenario machine index %d negative", l.Machine)
	}
	return sc, nil
}

// buildNet materializes the network process for the platform's Net spec.
// Scenario-kind net specs use the scenario's net component rather than a
// machine entry.
func (l LoadSpec) buildNet(defaultSeed int64) (load.Process, error) {
	if l.Kind != "scenario" {
		return l.build(defaultSeed)
	}
	sc, err := l.scenario()
	if err != nil {
		return nil, err
	}
	seed := l.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	net, err := sc.NetProcess(seed)
	if err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("predict: workload scenario %q defines no net component", l.Scenario)
	}
	return net, nil
}

// FaultSpec is one machine's sensor-fault schedule.
type FaultSpec struct {
	Machine     int          `json:"machine"`
	Drop        float64      `json:"drop,omitempty"`
	Transient   float64      `json:"transient,omitempty"`
	Spike       float64      `json:"spike,omitempty"`
	SpikeFactor float64      `json:"spike_factor,omitempty"`
	Outages     []OutageSpec `json:"outages,omitempty"`
}

// OutageSpec is one timed outage window, in virtual seconds.
type OutageSpec struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// CalibrationSpec mirrors calib.Config with JSON tags; zero fields take
// the calib defaults.
type CalibrationSpec struct {
	TargetCapture  float64 `json:"target_capture,omitempty"`
	Window         int     `json:"window,omitempty"`
	MinObserved    int     `json:"min_observed,omitempty"`
	ScaleFloor     float64 `json:"scale_floor,omitempty"`
	ScaleCeil      float64 `json:"scale_ceil,omitempty"`
	CUSUMSlack     float64 `json:"cusum_slack,omitempty"`
	CUSUMLimit     float64 `json:"cusum_limit,omitempty"`
	ModeCheckEvery int     `json:"mode_check_every,omitempty"`
	MaxModes       int     `json:"max_modes,omitempty"`
}

func (c *CalibrationSpec) config() calib.Config {
	if c == nil {
		return calib.Config{}
	}
	return calib.Config{
		TargetCapture:  c.TargetCapture,
		Window:         c.Window,
		MinObserved:    c.MinObserved,
		ScaleFloor:     c.ScaleFloor,
		ScaleCeil:      c.ScaleCeil,
		CUSUMSlack:     c.CUSUMSlack,
		CUSUMLimit:     c.CUSUMLimit,
		ModeCheckEvery: c.ModeCheckEvery,
		MaxModes:       c.MaxModes,
	}
}

// Config materializes the spec into a service Config. It is side-effect
// free and deterministic; errors name the offending field.
func (ps *PlatformSpec) Config() (Config, error) {
	if ps.Name == "" {
		return Config{}, errors.New("predict: spec missing platform name")
	}
	if len(ps.Machines) < 2 {
		return Config{}, fmt.Errorf("predict: spec %q has %d machines (a platform needs at least 2)", ps.Name, len(ps.Machines))
	}
	if ps.Warmup < 0 {
		return Config{}, fmt.Errorf("predict: spec %q has negative warmup %g", ps.Name, ps.Warmup)
	}
	machines := make([]cluster.Machine, len(ps.Machines))
	for i, m := range ps.Machines {
		var err error
		if machines[i], err = m.build(); err != nil {
			return Config{}, fmt.Errorf("predict: spec %q machine %d: %w", ps.Name, i, err)
		}
	}
	link := cluster.Ethernet10Mbit()
	if ps.Link != nil {
		if !(ps.Link.DedBW > 0) {
			return Config{}, fmt.Errorf("predict: spec %q link bandwidth %g must be positive", ps.Name, ps.Link.DedBW)
		}
		link = cluster.Link{DedBW: ps.Link.DedBW, Latency: ps.Link.Latency}
	}
	plat, err := cluster.NewPlatform(ps.Name, machines, link)
	if err != nil {
		return Config{}, fmt.Errorf("predict: spec %q: %w", ps.Name, err)
	}
	cpuSpecs := ps.CPU
	switch len(cpuSpecs) {
	case 0:
		cpuSpecs = make([]LoadSpec, len(machines))
		for i := range cpuSpecs {
			cpuSpecs[i] = LoadSpec{Kind: "light"}
		}
	case 1:
		if len(machines) > 1 {
			one := cpuSpecs[0]
			cpuSpecs = make([]LoadSpec, len(machines))
			for i := range cpuSpecs {
				cpuSpecs[i] = one
				// A broadcast scenario spreads its component entries
				// across the platform instead of cloning entry Machine.
				if one.Kind == "scenario" && one.Machine == 0 {
					cpuSpecs[i].Machine = i
				}
			}
		}
	case len(machines):
	default:
		return Config{}, fmt.Errorf("predict: spec %q has %d cpu loads for %d machines (want 0, 1, or %d)",
			ps.Name, len(cpuSpecs), len(machines), len(machines))
	}
	cpu := make([]load.Process, len(machines))
	for i, ls := range cpuSpecs {
		if cpu[i], err = ls.build(ps.Seed + int64(i)); err != nil {
			return Config{}, fmt.Errorf("predict: spec %q cpu %d: %w", ps.Name, i, err)
		}
	}
	var net load.Process = load.NewConstant(1)
	if ps.Net != nil {
		if net, err = ps.Net.buildNet(ps.Seed + 999); err != nil {
			return Config{}, fmt.Errorf("predict: spec %q net: %w", ps.Name, err)
		}
	}
	var injector *faults.Injector
	if len(ps.Faults) > 0 {
		faultSeed := ps.FaultSeed
		if faultSeed == 0 {
			faultSeed = ps.Seed
		}
		injector = faults.NewInjector(faultSeed)
		for _, f := range ps.Faults {
			if f.Machine < 0 || f.Machine >= len(machines) {
				return Config{}, fmt.Errorf("predict: spec %q fault machine %d out of range", ps.Name, f.Machine)
			}
			sched := faults.Schedule{
				DropProb:      f.Drop,
				TransientProb: f.Transient,
				SpikeProb:     f.Spike,
				SpikeFactor:   f.SpikeFactor,
			}
			for _, w := range f.Outages {
				sched.Outages = append(sched.Outages, faults.Window{Start: w.Start, End: w.End})
			}
			if err := injector.Set(f.Machine, sched); err != nil {
				return Config{}, fmt.Errorf("predict: spec %q fault machine %d: %w", ps.Name, f.Machine, err)
			}
		}
	}
	return Config{
		Platform:         plat,
		CPU:              cpu,
		Net:              net,
		Period:           ps.Period,
		History:          ps.History,
		Injector:         injector,
		Calibration:      ps.Calibration.config(),
		DisableTickCache: ps.DisableTickCache,
	}, nil
}

// Validate builds (and discards) the spec's Config, surfacing any spec
// error eagerly — the check RegisterSpec and the daemon's spec-file loader
// run so a typo fails at registration, not on the first request.
func (ps *PlatformSpec) Validate() error {
	_, err := ps.Config()
	return err
}

// clone returns a deep copy, so registered specs are immune to caller
// mutation.
func (ps *PlatformSpec) clone() *PlatformSpec {
	c := *ps
	c.Machines = append([]MachineSpec(nil), ps.Machines...)
	c.CPU = append([]LoadSpec(nil), ps.CPU...)
	for i, ls := range c.CPU {
		c.CPU[i].Modes = append([]ModeSpec(nil), ls.Modes...)
		c.CPU[i].Weights = append([]float64(nil), ls.Weights...)
	}
	if ps.Link != nil {
		l := *ps.Link
		c.Link = &l
	}
	if ps.Net != nil {
		n := *ps.Net
		n.Modes = append([]ModeSpec(nil), ps.Net.Modes...)
		n.Weights = append([]float64(nil), ps.Net.Weights...)
		c.Net = &n
	}
	c.Faults = append([]FaultSpec(nil), ps.Faults...)
	for i, f := range c.Faults {
		c.Faults[i].Outages = append([]OutageSpec(nil), f.Outages...)
	}
	if ps.Calibration != nil {
		cal := *ps.Calibration
		c.Calibration = &cal
	}
	return &c
}

// NewServiceFromSpec builds a live Service from a spec: materialize the
// Config, construct the service, run the spec's warmup, and attach the
// spec for the snapshot path. metrics may be nil.
func NewServiceFromSpec(spec *PlatformSpec, metrics *obs.Registry) (*Service, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Metrics = metrics
	svc, err := NewService(cfg)
	if err != nil {
		return nil, err
	}
	svc.spec = spec.clone()
	for _, ls := range spec.CPU {
		if ls.Kind == "scenario" {
			svc.metrics.recordScenario(ls.Scenario)
		}
	}
	if spec.Net != nil && spec.Net.Kind == "scenario" {
		svc.metrics.recordScenario(spec.Net.Scenario)
	}
	if spec.Warmup > 0 {
		if err := svc.AdvanceTo(spec.Warmup); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

// ParseSpecs decodes a JSON array of platform specs (the -specs file
// format) and validates each one.
func ParseSpecs(r io.Reader) ([]PlatformSpec, error) {
	var specs []PlatformSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("predict: parsing specs: %w", err)
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("predict: spec %d: %w", i, err)
		}
	}
	return specs, nil
}

// SimulatedSpec returns the declarative spec for one of the paper's
// evaluation platforms — the spec-form twin of SimulatedConfig, wiring the
// same presets with the same derived seeds, so a service built from
// SimulatedSpec is bit-identical to one built from SimulatedConfig.
func SimulatedSpec(platform int, seed int64) (PlatformSpec, error) {
	switch platform {
	case 1:
		return PlatformSpec{
			Name: "platform1",
			Machines: []MachineSpec{
				{Name: "sparc2-a", Kind: "sparc2"},
				{Name: "sparc2-b", Kind: "sparc2"},
				{Name: "sparc5", Kind: "sparc5"},
				{Name: "sparc10", Kind: "sparc10"},
			},
			CPU: []LoadSpec{
				{Kind: "platform1-center", Seed: seed + 0},
				{Kind: "platform1-center", Seed: seed + 1},
				{Kind: "light", Seed: seed + 2},
				{Kind: "light", Seed: seed + 3},
			},
			Net:  &LoadSpec{Kind: "ethernet-contention", Seed: seed + 999},
			Seed: seed,
		}, nil
	case 2:
		spec := PlatformSpec{
			Name: "platform2",
			Machines: []MachineSpec{
				{Name: "sparc5", Kind: "sparc5"},
				{Name: "sparc10", Kind: "sparc10"},
				{Name: "ultra-a", Kind: "ultra"},
				{Name: "ultra-b", Kind: "ultra"},
			},
			Net:  &LoadSpec{Kind: "ethernet-contention", Seed: seed + 999},
			Seed: seed,
		}
		for i := range spec.Machines {
			spec.CPU = append(spec.CPU, LoadSpec{Kind: "platform2-bursty", Seed: seed + int64(i)*17})
		}
		return spec, nil
	default:
		return PlatformSpec{}, fmt.Errorf("predict: unknown platform %d (want 1 or 2)", platform)
	}
}

// FleetSpecs generates n tenant specs ("tenant-0000"...) for fleet-scale
// tests and the loadtest's -platforms mode: a rotation of
// platform-1-shaped steady tenants, platform-2-shaped bursty tenants, and
// workload-scenario tenants cycling the scenario library, each with its
// own derived seed and a short warmup to keep lazy instantiation cheap.
func FleetSpecs(n int, seed int64) []PlatformSpec {
	scenarios := workload.Names()
	specs := make([]PlatformSpec, n)
	for i := range specs {
		tseed := seed + int64(i)*1013
		spec := PlatformSpec{
			Name:   fmt.Sprintf("tenant-%04d", i),
			Seed:   tseed,
			Warmup: 120,
			Net:    &LoadSpec{Kind: "ethernet-contention"},
		}
		switch i % 3 {
		case 0:
			spec.Machines = []MachineSpec{
				{Name: "sparc2-a", Kind: "sparc2"},
				{Name: "sparc2-b", Kind: "sparc2"},
				{Name: "sparc5-a", Kind: "sparc5"},
				{Name: "sparc10-a", Kind: "sparc10"},
			}
			spec.CPU = []LoadSpec{
				{Kind: "platform1-center"},
				{Kind: "platform1-center"},
				{Kind: "light"},
				{Kind: "light"},
			}
		case 1:
			spec.Machines = []MachineSpec{
				{Name: "sparc5-a", Kind: "sparc5"},
				{Name: "sparc10-a", Kind: "sparc10"},
				{Name: "ultra-a", Kind: "ultra"},
			}
			spec.CPU = []LoadSpec{{Kind: "platform2-bursty"}}
		default:
			spec.Machines = []MachineSpec{
				{Name: "sparc5-a", Kind: "sparc5"},
				{Name: "sparc10-a", Kind: "sparc10"},
				{Name: "ultra-a", Kind: "ultra"},
				{Name: "ultra-b", Kind: "ultra"},
			}
			spec.CPU = []LoadSpec{{Kind: "scenario", Scenario: scenarios[(i/3)%len(scenarios)]}}
		}
		specs[i] = spec
	}
	return specs
}
