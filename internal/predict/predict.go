// Package predict is the concurrent prediction-service core: the paper's
// monitor -> forecast -> model -> schedule -> predict pipeline (§2.1-§2.3)
// packaged as a long-lived, goroutine-safe Service instead of a hand-wired
// experiment loop.
//
// A Service owns one simulated production platform: per-machine NWS CPU
// monitors (optionally wrapped with deterministic sensor faults from
// internal/faults), lazily created bandwidth monitors, and a shared virtual
// clock. Callers advance the clock as simulated time passes and issue
// concurrent Predict calls; each call reads the gap-aware monitor reports,
// chooses (or reuses) a strip partition, evaluates the SOR structural
// model, and returns the stochastic execution-time prediction together
// with per-machine load reports and gap/staleness diagnostics.
//
// The loop is closed online: every Prediction carries an ID, and Observe
// feeds the measured runtime back to the platform's calib.Tracker, which
// tracks interval capture, adapts a conformal half-width multiplier, and
// resets itself on detected load-regime drift. Predict returns the
// calibrated interval together with the raw one and the calibration
// diagnostics behind it.
//
// The experiments harness, cmd/sorpredict, and the cmd/predictd HTTP
// daemon are all thin layers over this one seam.
//
// Units: every time in this package's API — clock positions, predicted
// execution times, observed runtimes — is in virtual seconds on the
// platform's simulated clock. Wall-clock time appears only in the optional
// telemetry (the predict_stage_duration_seconds histograms record
// wall-clock stage latency). Telemetry never feeds back into predictions:
// same-seed services are bit-identical with metrics on or off.
//
// Thread-safety: Service and Registry are safe for concurrent use; plain
// data types (Request, Prediction, MachineReport) are values that the
// caller owns once returned and need no locking.
package predict

import (
	"prodpred/internal/calib"
	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// DefaultCPUPrior is the conservative fallback prior for a CPU monitor that
// has never recorded a single measurement: half availability ± the full
// range, the weakest defensible claim about a production machine. It is the
// last link of the RobustReport fallback chain (forecast -> running mean ->
// prior) everywhere the pipeline reads CPU availability.
var DefaultCPUPrior = stochastic.New(0.5, 0.5)

// Request names one prediction: which platform to predict on, the SOR
// problem (grid size and iteration count), and how the pipeline should
// resolve its stochastic choices. Zero values give the paper's defaults:
// mean-balanced partitioning, largest-mean group Max, related iteration
// combination.
type Request struct {
	// Platform optionally names the target platform; a Service rejects a
	// mismatched name and a Registry routes on it. Empty means "whatever
	// platform this Service owns".
	Platform string
	// N is the grid size (N x N).
	N int
	// Iterations is the SOR iteration count per run.
	Iterations int
	// Strategy selects how the partitioner reads the stochastic load
	// forecasts (mean-balanced, conservative, optimistic).
	Strategy sched.Strategy
	// TimeBalanced switches from capacity partitioning under Strategy to
	// the AppLeS-style time-balanced refinement (compute + ghost-row
	// communication equalized).
	TimeBalanced bool
	// MaxStrategy resolves the structural model's group Max over
	// processors (§2.3.3).
	MaxStrategy stochastic.MaxStrategy
	// IterationRel tags the combination across iterations as related
	// (paper, conservative) or unrelated (root-sum-square).
	IterationRel structural.Relation
	// Partition, when non-nil, pins a previously chosen decomposition so a
	// run series predicts against a fixed schedule; when nil the Service
	// partitions from the current load reports.
	Partition *sor.Partition
	// LoadOverride, when non-nil, replaces the robust monitor report for
	// each machine — the ablation experiments' knob.
	LoadOverride func(machine int, mon *nws.Monitor) (stochastic.Value, error)
	// Levels optionally lists central interval levels (each in (0,1)) the
	// caller wants read off the calibrated predictive distribution;
	// Prediction.Dist.Intervals answers them in order. Levels are part of
	// the per-request overlay, not the pipeline: they never affect the
	// tick cache key or the point prediction. A non-empty Levels implies
	// Distribution.
	Levels []float64
	// Distribution asks for the full quantile grid (Prediction.Dist) even
	// when no interval levels are requested. The Monte Carlo transform
	// behind the grid costs distSamples structural-model evaluations, so
	// it runs lazily: the first distribution-requesting prediction per
	// (shape, tick) pays it and the tick cache shares the result; requests
	// that leave both Distribution and Levels unset keep the legacy
	// two-number payload and never pay.
	Distribution bool
}

// MachineReport is one machine's contribution to a Prediction: the load
// value the model consumed plus the monitor diagnostics behind it.
type MachineReport struct {
	Machine int
	// Load is the stochastic CPU-availability value used for this machine.
	Load stochastic.Value
	// Raw is the instantaneous true availability at prediction time — a
	// simulation-side diagnostic the experiments plot against forecasts.
	Raw float64
	// Staleness is the monitor's effective staleness in sensor periods
	// (zero on a healthy measurement stream).
	Staleness float64
	// Widening is the staleness spread multiplier already baked into Load,
	// nws.StalenessFactor(Staleness) — reported so consumers can separate
	// sensor-gap widening from the calibration multiplier that composes
	// on top of it.
	Widening float64
	// Gaps counts the monitor's per-fault-class sensor outcomes so far.
	Gaps nws.GapStats
	// Forecaster tags which distribution forecaster produced this machine's
	// predictive load distribution: a tournament competitor
	// (nws.DistForecasterNames), a fallback-chain tag ("fallback",
	// "prior"), or "override" when the request pinned the loads.
	Forecaster string
	// Components summarize the machine's predictive load distribution as a
	// Gaussian mixture (a single component for normal-shaped reports).
	Components []nws.Component
}

// OverrideForecasterName tags machine reports whose load came from a
// Request.LoadOverride instead of a monitor's distribution forecaster.
const OverrideForecasterName = "override"

// Interval is one central prediction interval read off the calibrated
// predictive distribution.
type Interval struct {
	// Level is the central interval level in (0,1) (e.g. 0.95).
	Level float64
	// Lo and Hi are the interval endpoints in virtual seconds.
	Lo, Hi float64
}

// PredictionDist is the distribution payload of a Prediction: the full
// predictive execution-time distribution the legacy Value/Spread pair is a
// two-number view of.
//
// Raw is produced by a Monte Carlo transform of the per-machine load
// distributions: the structural model is evaluated over a fixed
// Latin-hypercube matrix of joint availability draws (machines and
// bandwidth sampled independently through their forecast quantile grids),
// and the execution-time quantiles are read off the resulting sample.
// Calibrated recenters the grid by the tracker's conformal median shift
// and applies its per-level two-sided conformal multipliers.
type PredictionDist struct {
	// Levels is the quantile grid, ascending (nws.DistLevels).
	Levels []float64
	// Raw are the uncalibrated execution-time quantiles at Levels,
	// nondecreasing, in virtual seconds.
	Raw []float64
	// Calibrated are the per-level conformally calibrated quantiles at
	// Levels, nondecreasing, in virtual seconds.
	Calibrated []float64
	// Forecaster is the dominant per-machine distribution-forecaster tag
	// behind this prediction (ties break toward the lower machine index);
	// per-machine tags are on Prediction.Loads.
	Forecaster string
	// Intervals answers Request.Levels in order, read off Calibrated.
	Intervals []Interval
}

// Quantile interpolates the calibrated predictive distribution at p,
// clamping outside the grid. It returns false before the distribution
// pipeline has produced a grid (zero-valued Dist).
func (d PredictionDist) Quantile(p float64) (float64, bool) {
	if len(d.Calibrated) != len(nws.DistLevels) {
		return 0, false
	}
	return nws.GridQuantile(d.Calibrated, p), true
}

// Prediction is the answer to one Request.
type Prediction struct {
	// ID identifies this prediction for the Observe feedback path. IDs are
	// issued monotonically per service, starting at 1.
	ID uint64
	// Value is the stochastic execution-time prediction in virtual
	// seconds, with the current calibration multiplier applied to its
	// half-width. Until outcomes accumulate (and after every regime reset)
	// the multiplier is 1 and Value equals Raw.
	Value stochastic.Value
	// Raw is the uncalibrated model prediction, in virtual seconds.
	Raw stochastic.Value
	// CalibrationScale is the half-width multiplier Value was produced
	// with (Value.Spread = CalibrationScale × Raw.Spread).
	CalibrationScale float64
	// Calibration is the platform's online accuracy state at issue time.
	Calibration calib.Snapshot
	// Partition is the strip decomposition the model was evaluated
	// against (the pinned one, or the one chosen from current loads).
	Partition *sor.Partition
	// Time is the virtual time the prediction was issued at, in virtual
	// seconds.
	Time float64
	// Loads reports per-machine load values and monitor diagnostics.
	Loads []MachineReport
	// Bandwidth is the link-availability fraction the model consumed
	// (Point(1) on an unmonitored, contention-free network).
	Bandwidth stochastic.Value
	// BWGaps counts the bandwidth monitor's sensor outcomes (zero when
	// the network is not monitored).
	BWGaps nws.GapStats
	// Dist is the distribution-valued prediction: the full quantile grid
	// (raw and calibrated), the dominant forecaster tag, and any requested
	// intervals. Value and Raw above are the legacy two-number views;
	// Dist carries the shape they flatten. It is populated only when the
	// request asked for it (Request.Distribution or Request.Levels);
	// otherwise it is zero and Quantile reports false.
	Dist PredictionDist
}

// Degraded reports whether any monitor behind this prediction is currently
// inside a measurement gap (non-zero staleness), i.e. the interval was
// widened by the fallback chain rather than forecast from fresh samples.
func (p Prediction) Degraded() bool {
	for _, l := range p.Loads {
		if l.Staleness > 0 {
			return true
		}
	}
	return false
}
