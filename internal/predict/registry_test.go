package predict_test

import (
	"strings"
	"sync"
	"testing"

	"prodpred/internal/predict"
)

func fleetRegistry(t *testing.T, n int) *predict.Registry {
	t.Helper()
	reg := predict.NewRegistry()
	for _, spec := range predict.FleetSpecs(n, 3) {
		spec.Warmup = 30 // keep instantiation cheap in tests
		if err := reg.RegisterSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestRegistryLazyInstantiation asserts cold specs cost nothing until the
// first request that names them, and that a request instantiates only its
// own tenant.
func TestRegistryLazyInstantiation(t *testing.T) {
	reg := fleetRegistry(t, 50)
	if got := reg.LiveCount(); got != 0 {
		t.Fatalf("LiveCount before any request = %d, want 0", got)
	}
	if got := len(reg.Names()); got != 50 {
		t.Fatalf("Names lists %d platforms, want 50", got)
	}
	req := baseRequest()
	req.Platform = "tenant-0007"
	p, err := reg.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time != 30 {
		t.Fatalf("lazily built tenant served at t=%g, want its warmup 30", p.Time)
	}
	if got := reg.LiveCount(); got != 1 {
		t.Fatalf("LiveCount after one request = %d, want 1", got)
	}
	if got := len(reg.Services()); got != 1 {
		t.Fatalf("Services lists %d live services, want 1", got)
	}
}

// TestRegistryConcurrentFirstLookup asserts a cold tenant is built exactly
// once under concurrent first requests — every caller gets the same
// service instance.
func TestRegistryConcurrentFirstLookup(t *testing.T) {
	reg := fleetRegistry(t, 4)
	const callers = 16
	services := make([]*predict.Service, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc, err := reg.Lookup("tenant-0002")
			if err != nil {
				t.Error(err)
				return
			}
			services[i] = svc
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if services[i] != services[0] {
			t.Fatal("concurrent first lookups built different services")
		}
	}
	if got := reg.LiveCount(); got != 1 {
		t.Fatalf("LiveCount = %d, want 1", got)
	}
}

// TestRegistryLookupErrorBounded is the satellite regression: a miss
// against a large fleet must allocate a bounded error — a count plus a few
// nearest names — not format the entire tenant roster.
func TestRegistryLookupErrorBounded(t *testing.T) {
	reg := fleetRegistry(t, 1000)
	_, err := reg.Lookup("tenant-05xx")
	if err == nil {
		t.Fatal("want lookup error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "unknown platform") || !strings.Contains(msg, "1000") {
		t.Fatalf("error should carry the registration count: %q", msg)
	}
	if !strings.Contains(msg, "tenant-05") {
		t.Fatalf("error should carry nearby names: %q", msg)
	}
	if len(msg) > 256 {
		t.Fatalf("miss error is %d bytes — the full roster leaked in: %q...", len(msg), msg[:120])
	}
	// The missed name itself plus at most three nearest suggestions.
	if strings.Count(msg, "tenant-") > 4 {
		t.Fatalf("miss error names more than 3 tenants: %q", msg)
	}
}

// TestRegistryEmptyNameMultiTenant pins the empty-name Lookup semantics on
// a fleet: with many tenants the empty name is an error (bounded, with the
// count); with exactly one registered spec it resolves to that tenant,
// lazily instantiating it.
func TestRegistryEmptyNameMultiTenant(t *testing.T) {
	reg := fleetRegistry(t, 8)
	if _, err := reg.Lookup(""); err == nil {
		t.Fatal("empty name with 8 tenants should fail")
	} else if !strings.Contains(err.Error(), "8 platform(s)") {
		t.Fatalf("empty-name error should carry the count: %q", err.Error())
	}

	solo := predict.NewRegistry()
	spec := predict.FleetSpecs(1, 9)[0]
	spec.Warmup = 30
	if err := solo.RegisterSpec(spec); err != nil {
		t.Fatal(err)
	}
	svc, err := solo.Lookup("")
	if err != nil {
		t.Fatalf("empty name with a single spec should resolve: %v", err)
	}
	if svc.Name() != spec.Name {
		t.Fatalf("resolved %q, want %q", svc.Name(), spec.Name)
	}
	empty := predict.NewRegistry()
	if _, err := empty.Lookup(""); err == nil {
		t.Fatal("empty registry should fail")
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	reg := predict.NewRegistry()
	spec := predict.FleetSpecs(1, 2)[0]
	if err := reg.RegisterSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterSpec(spec); err == nil {
		t.Fatal("duplicate spec registration should fail")
	}
	svc, err := predict.NewServiceFromSpec(&spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(svc); err == nil {
		t.Fatal("registering a live service over its spec should fail")
	}
}

// TestRegistryShardedRouting exercises routing across many tenants and
// shard counts: every registered name must resolve to its own service.
func TestRegistryShardedRouting(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		reg := predict.NewRegistryWith(predict.RegistryOptions{Shards: shards})
		specs := predict.FleetSpecs(64, 7)
		for _, spec := range specs {
			spec.Warmup = 0
			if err := reg.RegisterSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
		for _, spec := range specs {
			svc, err := reg.Lookup(spec.Name)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if svc.Name() != spec.Name {
				t.Fatalf("shards=%d: lookup %q routed to %q", shards, spec.Name, svc.Name())
			}
		}
		if got := len(reg.Names()); got != 64 {
			t.Fatalf("shards=%d: Names lists %d, want 64", shards, got)
		}
	}
}

// TestRegistryRetire asserts retiring a tenant removes it from lookup and
// the roster with the bounded miss error, keeps already-held services
// usable, and re-derives the empty-name sole-platform resolution.
func TestRegistryRetire(t *testing.T) {
	reg := fleetRegistry(t, 3)
	held, err := reg.Lookup("tenant-0001")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Retire("tenant-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("tenant-0001"); err == nil {
		t.Fatal("lookup of retired tenant should miss")
	} else if !strings.Contains(err.Error(), "2 platform(s) registered") {
		t.Errorf("miss error not bounded-style: %v", err)
	}
	if got := len(reg.Names()); got != 2 {
		t.Fatalf("Names lists %d platforms after retire, want 2", got)
	}
	// The already-held service keeps serving.
	req := baseRequest()
	if _, err := held.Predict(req); err != nil {
		t.Errorf("held service broken after retire: %v", err)
	}
	// Retiring an unknown name returns the bounded miss error.
	if err := reg.Retire("tenant-0001"); err == nil {
		t.Error("double retire should fail")
	}
	// Down to one platform, the empty name resolves to it again.
	if err := reg.Retire("tenant-0002"); err != nil {
		t.Fatal(err)
	}
	svc, err := reg.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name() != "tenant-0000" {
		t.Errorf("empty-name lookup resolved to %q, want tenant-0000", svc.Name())
	}
}
