package predict_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"prodpred/internal/predict"
	"prodpred/internal/stochastic"
)

// shardService builds the stress platform with the tick cache on or off —
// the two serving paths the coherence tests compare.
func shardService(t *testing.T, seed int64, noCache bool) *predict.Service {
	t.Helper()
	cfg, err := predict.SimulatedConfig(2, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Injector = stressInjector(t, seed, 4)
	cfg.History = 256
	cfg.DisableTickCache = noCache
	svc, err := predict.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	return svc
}

// stressShapes are distinct request shapes — distinct cache keys — so the
// stress tests exercise several cache entries per tick, not one.
func stressShapes() []predict.Request {
	return []predict.Request{
		{N: 120, Iterations: 6, MaxStrategy: stochastic.LargestMean},
		{N: 60, Iterations: 3, MaxStrategy: stochastic.LargestMean},
		{N: 240, Iterations: 6, MaxStrategy: stochastic.LargestMagnitude},
		{N: 120, Iterations: 6, MaxStrategy: stochastic.LargestMean, TimeBalanced: true},
	}
}

// TestShardedPredictTickCoherence is the sharded-state -race stress test:
// many goroutines Predict with mixed request shapes while another advances
// the clock. Two invariants must hold no matter how the scheduler
// interleaves them: (a) every prediction carries a virtual time the clock
// actually stood at, and all predictions sharing a (time, shape) pair are
// identical — a cache hit can never leak a core computed at an older tick;
// (b) once an Advance call has returned, no later Predict may be stamped
// with a pre-advance time.
func TestShardedPredictTickCoherence(t *testing.T) {
	svc := shardService(t, 47, false)
	shapes := stressShapes()
	startGen := svc.CacheGeneration()

	type obs struct {
		time  float64
		shape int
		value stochastic.Value
	}
	var (
		mu   sync.Mutex
		seen []obs
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				shape := (w + i) % len(shapes)
				p, err := svc.Predict(shapes[shape])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				seen = append(seen, obs{p.Time, shape, p.Value})
				mu.Unlock()
			}
		}(w)
	}
	// Let the workers land predictions at every tick before moving the
	// clock, so each advance genuinely interleaves with concurrent hits.
	waitForSamples := func(n int) {
		for {
			mu.Lock()
			c := len(seen)
			mu.Unlock()
			if c >= n {
				return
			}
			runtime.Gosched()
		}
	}
	ticks := map[float64]bool{svc.Now(): true}
	for i := 0; i < 6; i++ {
		waitForSamples((i + 1) * 16)
		if err := svc.Advance(31); err != nil {
			t.Fatal(err)
		}
		ticks[svc.Now()] = true
		// A Predict issued strictly after Advance returned must see the
		// new clock, never a cached pre-advance core.
		p, err := svc.Predict(shapes[0])
		if err != nil {
			t.Fatal(err)
		}
		if p.Time != svc.Now() {
			t.Fatalf("stale prediction escaped: issued at %v after advancing to %v", p.Time, svc.Now())
		}
	}
	close(stop)
	wg.Wait()

	byKey := map[string]stochastic.Value{}
	for _, o := range seen {
		if !ticks[o.time] {
			t.Fatalf("prediction stamped with time %v, which the clock never stood at", o.time)
		}
		key := fmt.Sprintf("%v/%d", o.time, o.shape)
		if first, ok := byKey[key]; !ok {
			byKey[key] = o.value
		} else if first != o.value {
			t.Fatalf("tick %s: predictions diverged: %v vs %v", key, first, o.value)
		}
	}
	if len(seen) == 0 {
		t.Fatal("stress run produced no concurrent predictions")
	}
	if svc.CacheGeneration() == startGen {
		t.Error("advances did not move the cache generation")
	}
}

// TestCachedMatchesUncached locks down the cache's core guarantee: the
// tick-scoped cache is a pure memoization, so a cached service and a
// DisableTickCache service with the same seed, driven through the same
// predict/observe/advance sequence, must emit byte-identical predictions
// (IDs, calibration state, monitor diagnostics — everything).
func TestCachedMatchesUncached(t *testing.T) {
	run := func(noCache bool) []string {
		svc := shardService(t, 51, noCache)
		shapes := stressShapes()
		var got []string
		for r := 0; r < 5; r++ {
			for rep := 0; rep < 3; rep++ { // repeats hit the cache on the cached service
				for _, req := range shapes {
					p, err := svc.Predict(req)
					if err != nil {
						t.Fatal(err)
					}
					// %#v renders the partition as a pointer address;
					// compare its contents instead.
					part := "<nil>"
					if p.Partition != nil {
						part = fmt.Sprintf("%#v", *p.Partition)
					}
					p.Partition = nil
					got = append(got, fmt.Sprintf("%#v|%s", p, part))
					if rep == 0 {
						if _, err := svc.Observe(p.ID, p.Raw.Mean*1.03); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := svc.Advance(29); err != nil {
				t.Fatal(err)
			}
		}
		got = append(got, fmt.Sprintf("%#v", svc.Accuracy()))
		return got
	}
	cached, uncached := run(false), run(true)
	if len(cached) != len(uncached) {
		t.Fatalf("run lengths diverged: %d vs %d", len(cached), len(uncached))
	}
	for i := range cached {
		if cached[i] != uncached[i] {
			t.Fatalf("step %d diverged:\ncached:   %s\nuncached: %s", i, cached[i], uncached[i])
		}
	}
}
