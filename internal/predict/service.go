package predict

import (
	"errors"
	"fmt"
	"sync"

	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/obs"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// timeBalanceRefinements is the fixed-point refinement depth of the
// AppLeS-style time-balanced partitioner.
const timeBalanceRefinements = 8

// Config describes the platform a Service owns and how it is monitored.
type Config struct {
	// Platform is the machine/link description.
	Platform *cluster.Platform
	// CPU holds one load process per machine.
	CPU []load.Process
	// Net is the network contention process; a load.Constant network is
	// treated as contention-free and left unmonitored.
	Net load.Process
	// Period is the sensor cadence in virtual seconds (nws.DefaultPeriod
	// when zero).
	Period float64
	// History is the monitor ring size (512 when zero).
	History int
	// Injector, when non-nil, wraps every CPU sensor with its per-machine
	// deterministic fault schedule.
	Injector *faults.Injector
	// CPUPrior is the no-history fallback for CPU monitors
	// (DefaultCPUPrior when zero).
	CPUPrior stochastic.Value
	// Calibration tunes the online accuracy tracker; zero-value fields
	// take the calib package defaults (95% capture target, window 64,
	// scale clamped to [0.5, 3]).
	Calibration calib.Config
	// Metrics, when non-nil, receives the service's telemetry: per-platform
	// pipeline counters/gauges and per-stage wall-clock latency histograms
	// (see the predict Metric* constants). Nil disables instrumentation at
	// near-zero cost; telemetry never feeds back into predictions, so
	// same-seed determinism is unaffected either way.
	Metrics *obs.Registry
}

// maxOutstanding bounds how many issued-but-unobserved predictions a
// service remembers for the Observe path; beyond it the oldest are evicted
// (a caller that never observes must not grow the service without bound).
const maxOutstanding = 4096

// Service is a long-lived, goroutine-safe prediction service over one
// simulated production platform. It owns the platform's NWS monitors and a
// shared virtual clock; Advance/AdvanceTo move time forward (taking all due
// measurements), and Predict answers requests at the current time. All
// methods may be called concurrently; results are deterministic for a
// given seed and clock schedule because every sensor and fault decision is
// a pure function of virtual time.
type Service struct {
	mu       sync.Mutex
	name     string
	plat     *cluster.Platform
	env      *simenv.Env
	machines []cluster.Machine
	link     cluster.Link
	monitors []*nws.Monitor
	bw       map[float64]*nws.Monitor // keyed by probe size (bytes)
	netMon   bool
	period   float64
	history  int
	prior    stochastic.Value
	now      float64

	// Online accuracy state: the per-platform tracker plus the ledger of
	// issued-but-unobserved predictions the Observe path resolves against.
	tracker     *calib.Tracker
	nextID      uint64
	issued      map[uint64]issuedPrediction
	issuedOrder []uint64 // issue order, for bounded eviction

	// Telemetry (nil when Config.Metrics was nil). lastMissed tracks the
	// missed-sample total already exported, so the fault-gap counter only
	// ever advances by deltas.
	metrics    *serviceMetrics
	lastMissed int
}

// issuedPrediction remembers what Observe needs about one answered request.
type issuedPrediction struct {
	raw, calibrated stochastic.Value
}

// NewService builds the service: one fault-injectable CPU monitor per
// machine, a lazily grown set of bandwidth monitors, and the clock at
// virtual time zero. No measurements are taken until the clock advances.
func NewService(cfg Config) (*Service, error) {
	if cfg.Platform == nil {
		return nil, errors.New("predict: nil platform")
	}
	env, err := simenv.New(cfg.Platform, cfg.CPU, cfg.Net)
	if err != nil {
		return nil, err
	}
	period := cfg.Period
	if period == 0 {
		period = nws.DefaultPeriod
	}
	history := cfg.History
	if history == 0 {
		history = 512
	}
	prior := cfg.CPUPrior
	if prior == (stochastic.Value{}) {
		prior = DefaultCPUPrior
	}
	tracker, err := calib.New(cfg.Calibration)
	if err != nil {
		return nil, err
	}
	p := cfg.Platform.Size()
	s := &Service{
		name:     cfg.Platform.Name,
		plat:     cfg.Platform,
		env:      env,
		machines: make([]cluster.Machine, p),
		monitors: make([]*nws.Monitor, p),
		bw:       make(map[float64]*nws.Monitor),
		period:   period,
		history:  history,
		prior:    prior,
		tracker:  tracker,
		issued:   make(map[uint64]issuedPrediction),
		metrics:  newServiceMetrics(cfg.Metrics, cfg.Platform.Name),
	}
	_, constant := cfg.Net.(load.Constant)
	s.netMon = !constant
	if s.link, err = cfg.Platform.Link(0, 1); err != nil {
		return nil, err
	}
	for i := 0; i < p; i++ {
		s.machines[i] = cfg.Platform.Machine(i)
		sensor, err := nws.CPUSensor(env, i)
		if err != nil {
			return nil, err
		}
		if cfg.Injector != nil {
			sensor = cfg.Injector.Sensor(i, sensor)
		}
		if s.monitors[i], err = nws.NewSensorMonitor(sensor, period, history); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Name returns the platform name the service answers for.
func (s *Service) Name() string { return s.name }

// Platform returns the platform description.
func (s *Service) Platform() *cluster.Platform { return s.plat }

// Env exposes the simulated environment, read-only in virtual time — the
// seam execution backends (sor.NewSimBackend) attach to.
func (s *Service) Env() *simenv.Env { return s.env }

// Machines returns the platform's machine descriptions.
func (s *Service) Machines() []cluster.Machine {
	return append([]cluster.Machine(nil), s.machines...)
}

// Now returns the current virtual time, in virtual seconds.
func (s *Service) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by dt virtual seconds, taking every
// sensor measurement that falls due.
func (s *Service) Advance(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("predict: negative advance %g", dt)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceToLocked(s.now + dt)
}

// AdvanceTo moves the clock to absolute virtual time t >= Now().
func (s *Service) AdvanceTo(t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		return fmt.Errorf("predict: cannot advance backwards from %g to %g", s.now, t)
	}
	return s.advanceToLocked(t)
}

func (s *Service) advanceToLocked(t float64) error {
	s.now = t
	for _, mon := range s.monitors {
		if err := mon.RunUntil(t); err != nil {
			return err
		}
	}
	for _, mon := range s.bw {
		if err := mon.RunUntil(t); err != nil {
			return err
		}
	}
	s.syncClockMetricsLocked()
	return nil
}

// syncClockMetricsLocked publishes the virtual clock and the fault-gap
// delta accumulated since the previous sync.
func (s *Service) syncClockMetricsLocked() {
	if s.metrics == nil {
		return
	}
	missed := 0
	for _, mon := range s.monitors {
		missed += mon.Gaps().Missed
	}
	for _, mon := range s.bw {
		missed += mon.Gaps().Missed
	}
	s.metrics.recordClock(s.now, missed-s.lastMissed)
	s.lastMissed = missed
}

func (s *Service) checkPlatformLocked(name string) error {
	if name != "" && name != s.name {
		return fmt.Errorf("predict: request for platform %q on service for %q", name, s.name)
	}
	return nil
}

func validateRequest(req Request) error {
	if req.N < 3 {
		return fmt.Errorf("predict: grid size %d too small (need N >= 3)", req.N)
	}
	if req.Iterations <= 0 {
		return fmt.Errorf("predict: iterations must be positive, got %d", req.Iterations)
	}
	return nil
}

// loadsLocked reads one stochastic load value per machine: the override
// when the request carries one, the gap-aware RobustReport fallback chain
// (forecast -> running mean -> prior) otherwise. The two pipeline stages it
// spans are timed separately: monitor_read (catching every monitor up to
// the current virtual time — normally a no-op, since Advance already did)
// and forecast (producing the stochastic load reports).
func (s *Service) loadsLocked(override func(int, *nws.Monitor) (stochastic.Value, error)) ([]stochastic.Value, error) {
	stopRead := s.metrics.stageTimer("monitor_read")
	for _, mon := range s.monitors {
		if err := mon.RunUntil(s.now); err != nil {
			stopRead()
			return nil, err
		}
	}
	stopRead()
	stopForecast := s.metrics.stageTimer("forecast")
	defer stopForecast()
	loads := make([]stochastic.Value, len(s.monitors))
	for i, mon := range s.monitors {
		if override != nil {
			v, err := override(i, mon)
			if err != nil {
				return nil, err
			}
			loads[i] = v
		} else {
			loads[i] = mon.RobustReport(s.now, s.prior)
		}
	}
	return loads, nil
}

func (s *Service) partitionLocked(req Request, loads []stochastic.Value) (*sor.Partition, error) {
	defer s.metrics.stageTimer("schedule")()
	if req.TimeBalanced {
		return sched.TimeBalancedPartition(req.N, s.machines, loads, s.link, timeBalanceRefinements)
	}
	return sched.SORPartition(req.N, s.machines, loads, req.Strategy)
}

// Partition chooses a strip decomposition from the current load reports
// under the request's strategy — the "schedule" step, split out so a run
// series can pin one decomposition (via Request.Partition) across many
// Predict calls, the way the paper fixes the schedule once per series.
func (s *Service) Partition(req Request) (*sor.Partition, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkPlatformLocked(req.Platform); err != nil {
		return nil, err
	}
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	loads, err := s.loadsLocked(req.LoadOverride)
	if err != nil {
		return nil, err
	}
	return s.partitionLocked(req, loads)
}

// bwMonitorLocked returns the bandwidth monitor probing with n's
// ghost-row-sized messages, creating and catching it up on first use.
// Monitors are pure functions of virtual time, so a late-created monitor
// has exactly the history an early-created one would.
func (s *Service) bwMonitorLocked(n int) (*nws.Monitor, error) {
	probeBytes := float64(n-2) * 8
	if mon, ok := s.bw[probeBytes]; ok {
		return mon, nil
	}
	mon, err := nws.NewBandwidthMonitor(s.env, 0, 1, probeBytes, s.period, s.history)
	if err != nil {
		return nil, err
	}
	if err := mon.RunUntil(s.now); err != nil {
		return nil, err
	}
	s.bw[probeBytes] = mon
	return mon, nil
}

// Predict answers one request at the current virtual time: read per-machine
// load reports, choose (or reuse) the partition, parameterize the SOR
// structural model, and evaluate it to a stochastic prediction. When the
// service carries a metrics registry, the call records per-stage wall-clock
// latencies (monitor_read -> forecast -> schedule -> model_eval, plus the
// whole call as stage "predict") and the per-platform counters/gauges.
func (s *Service) Predict(req Request) (Prediction, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stop := s.metrics.stageTimer("predict")
	p, err := s.predictLocked(req)
	stop()
	if err != nil {
		s.metrics.recordError()
		return Prediction{}, err
	}
	s.metrics.recordPredict(p.CalibrationScale, len(s.issued))
	s.syncClockMetricsLocked() // a first-use bandwidth monitor may have added gaps
	return p, nil
}

func (s *Service) predictLocked(req Request) (Prediction, error) {
	if err := s.checkPlatformLocked(req.Platform); err != nil {
		return Prediction{}, err
	}
	if err := validateRequest(req); err != nil {
		return Prediction{}, err
	}
	loads, err := s.loadsLocked(req.LoadOverride)
	if err != nil {
		return Prediction{}, err
	}
	part := req.Partition
	if part == nil {
		if part, err = s.partitionLocked(req, loads); err != nil {
			return Prediction{}, err
		}
	}
	params := structural.Params{structural.BWAvailParam: stochastic.Point(1)}
	bwFrac := stochastic.Point(1)
	var bwGaps nws.GapStats
	if s.netMon {
		// Production network: the NWS bandwidth monitor's forecast of
		// achieved bytes/s, expressed as a fraction of the dedicated link
		// rate. Same fallback chain as the CPU monitors; the prior claims
		// half the dedicated rate ± the full range.
		mon, err := s.bwMonitorLocked(req.N)
		if err != nil {
			return Prediction{}, err
		}
		bw := mon.RobustReport(s.now, stochastic.New(s.link.DedBW/2, s.link.DedBW/2))
		frac := bw.MulPoint(1 / s.link.DedBW)
		if frac.Mean <= 0.01 {
			frac = stochastic.New(0.01, frac.Spread)
		}
		params[structural.BWAvailParam] = frac
		bwFrac = frac
		bwGaps = mon.Gaps()
	}
	for i, l := range loads {
		params[structural.LoadParam(i)] = l
	}
	model := &structural.SORConfig{
		N:            req.N,
		Iterations:   req.Iterations,
		Partition:    part,
		Machines:     s.machines,
		MachineIdx:   sor.IdentityMapping(len(s.machines)),
		Link:         s.link,
		MaxStrategy:  req.MaxStrategy,
		IterationRel: req.IterationRel,
	}
	stopEval := s.metrics.stageTimer("model_eval")
	v, err := model.Predict(params)
	stopEval()
	if err != nil {
		return Prediction{}, err
	}
	reports := make([]MachineReport, len(loads))
	for i := range loads {
		reports[i] = MachineReport{
			Machine:   i,
			Load:      loads[i],
			Raw:       s.env.RawCPUAvail(i, s.now),
			Staleness: s.monitors[i].Staleness(),
			Widening:  s.monitors[i].DegradationFactor(),
			Gaps:      s.monitors[i].Gaps(),
		}
	}
	cal := s.tracker.Calibrate(v)
	scale := 1.0
	if v.Spread > 0 {
		scale = cal.Spread / v.Spread
	}
	id := s.issueLocked(v, cal)
	return Prediction{
		ID:               id,
		Value:            cal,
		Raw:              v,
		CalibrationScale: scale,
		Calibration:      s.tracker.Snapshot(),
		Partition:        part,
		Time:             s.now,
		Loads:            reports,
		Bandwidth:        bwFrac,
		BWGaps:           bwGaps,
	}, nil
}

// issueLocked registers a freshly answered prediction in the Observe
// ledger, evicting the oldest unobserved entry past the retention bound.
func (s *Service) issueLocked(raw, calibrated stochastic.Value) uint64 {
	s.nextID++
	id := s.nextID
	if len(s.issuedOrder) >= maxOutstanding {
		delete(s.issued, s.issuedOrder[0])
		s.issuedOrder = s.issuedOrder[1:]
	}
	s.issued[id] = issuedPrediction{raw: raw, calibrated: calibrated}
	s.issuedOrder = append(s.issuedOrder, id)
	return id
}

// Observe closes the loop for one prediction: the measured runtime (in
// virtual seconds, like the prediction it answers) is fed to the
// platform's accuracy tracker, which updates capture statistics,
// adapts the interval multiplier, and checks for regime drift. The
// prediction ID must have been issued by this service and not yet observed;
// the returned snapshot reflects the state after ingestion.
func (s *Service) Observe(id uint64, actual float64) (calib.Snapshot, error) {
	if actual <= 0 {
		return calib.Snapshot{}, fmt.Errorf("predict: non-positive actual runtime %g", actual)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ip, ok := s.issued[id]
	if !ok {
		return calib.Snapshot{}, fmt.Errorf("predict: prediction id %d was never issued by platform %q (or was already observed)", id, s.name)
	}
	delete(s.issued, id)
	_, drifted := s.tracker.Observe(calib.Outcome{
		ID:         id,
		Time:       s.now,
		Raw:        ip.raw,
		Calibrated: ip.calibrated,
		Actual:     actual,
	})
	s.metrics.recordObserve(s.tracker.Scale(), len(s.issued), drifted)
	return s.tracker.Snapshot(), nil
}

// Accuracy returns the platform's online accuracy and calibration state.
// Safe for concurrent use (the tracker carries its own lock).
func (s *Service) Accuracy() calib.Snapshot {
	return s.tracker.Snapshot()
}

// Outstanding reports how many issued predictions await an Observe call.
func (s *Service) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.issued)
}

// Reports returns the current per-machine load reports (robust fallback
// chain) without evaluating a model — the /report endpoint's view.
func (s *Service) Reports() []MachineReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	reports := make([]MachineReport, len(s.monitors))
	for i, mon := range s.monitors {
		reports[i] = MachineReport{
			Machine:   i,
			Load:      mon.RobustReport(s.now, s.prior),
			Raw:       s.env.RawCPUAvail(i, s.now),
			Staleness: mon.Staleness(),
			Widening:  mon.DegradationFactor(),
			Gaps:      mon.Gaps(),
		}
	}
	return reports
}

// CPUGaps returns each CPU monitor's per-fault-class gap counters.
func (s *Service) CPUGaps() []nws.GapStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	gaps := make([]nws.GapStats, len(s.monitors))
	for i, mon := range s.monitors {
		gaps[i] = mon.Gaps()
	}
	return gaps
}

// BWGaps returns the bandwidth monitors' gap counters, summed across probe
// sizes (LongestGap is the max). It is zero when the network is
// contention-free or no prediction has consulted bandwidth yet.
func (s *Service) BWGaps() nws.GapStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total nws.GapStats
	for _, mon := range s.bw {
		g := mon.Gaps()
		total.Clean += g.Clean
		total.Recovered += g.Recovered
		total.Retries += g.Retries
		total.Dropped += g.Dropped
		total.Outage += g.Outage
		total.TransientLost += g.TransientLost
		total.SensorErrors += g.SensorErrors
		total.Missed += g.Missed
		if g.LongestGap > total.LongestGap {
			total.LongestGap = g.LongestGap
		}
	}
	return total
}
