package predict

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/obs"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// timeBalanceRefinements is the fixed-point refinement depth of the
// AppLeS-style time-balanced partitioner.
const timeBalanceRefinements = 8

// Config describes the platform a Service owns and how it is monitored.
type Config struct {
	// Platform is the machine/link description.
	Platform *cluster.Platform
	// CPU holds one load process per machine.
	CPU []load.Process
	// Net is the network contention process; a load.Constant network is
	// treated as contention-free and left unmonitored.
	Net load.Process
	// Period is the sensor cadence in virtual seconds (nws.DefaultPeriod
	// when zero).
	Period float64
	// History is the monitor ring size (512 when zero).
	History int
	// Injector, when non-nil, wraps every CPU sensor with its per-machine
	// deterministic fault schedule.
	Injector *faults.Injector
	// CPUPrior is the no-history fallback for CPU monitors
	// (DefaultCPUPrior when zero).
	CPUPrior stochastic.Value
	// Calibration tunes the online accuracy tracker; zero-value fields
	// take the calib package defaults (95% capture target, window 64,
	// scale clamped to [0.5, 3]).
	Calibration calib.Config
	// Metrics, when non-nil, receives the service's telemetry: per-platform
	// pipeline counters/gauges and per-stage wall-clock latency histograms
	// (see the predict Metric* constants). Nil disables instrumentation at
	// near-zero cost; telemetry never feeds back into predictions, so
	// same-seed determinism is unaffected either way.
	Metrics *obs.Registry
	// DisableTickCache turns off the tick-scoped forecast cache, forcing
	// every Predict through the full pipeline — the reference path the
	// stress tests and the cached-vs-uncached CI smoke compare against.
	// Cached and uncached services are bit-identical for the same seed and
	// clock schedule; the cache only changes how often the (pure) pipeline
	// runs.
	DisableTickCache bool
}

// maxOutstanding bounds how many issued-but-unobserved predictions a
// service remembers for the Observe path; beyond it the oldest are evicted
// (a caller that never observes must not grow the service without bound).
const maxOutstanding = 4096

// monitorShard is one independently locked monitor. CPU monitors get one
// shard per machine and bandwidth monitors one shard per probe size, so
// concurrent Predicts touching different monitors never serialize on a
// service-wide lock. A bandwidth shard is inserted into the map before its
// monitor exists; the monitor is built lazily under the shard's own lock
// (double-checked), so a first-touch probe size stalls only requests for
// that same probe size.
type monitorShard struct {
	mu  sync.Mutex
	mon *nws.Monitor
}

// Service is a long-lived, goroutine-safe prediction service over one
// simulated production platform. It owns the platform's NWS monitors and a
// shared virtual clock; Advance/AdvanceTo move time forward (taking all due
// measurements), and Predict answers requests at the current time. All
// methods may be called concurrently; results are deterministic for a
// given seed and clock schedule because every sensor and fault decision is
// a pure function of virtual time.
//
// Locking: clockMu orders everything against clock movement — Advance holds
// it exclusively while it runs monitors forward and invalidates the tick
// cache; every reader (Predict, Reports, Observe, ...) holds it shared, so
// all requests between two advances see one frozen monitor state. Under the
// shared clock lock, per-monitor shard locks serialize access to individual
// (non-thread-safe) monitors, and ledgerMu guards the Observe ledger. Lock
// order: clockMu > cache entry > shard > ledgerMu; the calibration tracker
// carries its own internal lock and is never held across another.
type Service struct {
	name     string
	plat     *cluster.Platform
	env      *simenv.Env
	machines []cluster.Machine
	link     cluster.Link
	netMon   bool
	period   float64
	history  int
	prior    stochastic.Value

	// spec, when non-nil, is the declarative description the service was
	// built from. Snapshots require it: the restore path rebuilds the
	// static structure (platform, load processes, faults) from the spec
	// and imports only dynamic state on top.
	spec *PlatformSpec

	clockMu sync.RWMutex
	now     float64

	shards []monitorShard // one per machine, CPU monitors

	bwMu sync.RWMutex
	bw   map[float64]*monitorShard // keyed by probe size (bytes)

	// cache is the tick-scoped forecast cache (nil when disabled): all
	// Predicts between two Advance calls that share a request shape share
	// one pipeline evaluation.
	cache *tickCache

	// distU is the fixed Latin-hypercube sample matrix the distribution
	// transform evaluates the structural model over — one column per
	// machine plus one for the bandwidth fraction. Fixed at construction
	// so predictions stay a pure function of monitor state.
	distU [][]float64

	// Online accuracy state: the per-platform tracker plus the ledger of
	// issued-but-unobserved predictions the Observe path resolves against.
	// The tracker locks internally; ledgerMu guards the ledger maps.
	tracker     *calib.Tracker
	ledgerMu    sync.Mutex
	nextID      uint64
	issued      map[uint64]issuedPrediction
	issuedOrder []uint64 // issue order, for bounded eviction

	// Telemetry (nil when Config.Metrics was nil). lastMissed tracks the
	// missed-sample total already exported, so the fault-gap counter only
	// ever advances by deltas; metricsMu serializes the delta computation.
	metrics    *serviceMetrics
	metricsMu  sync.Mutex
	lastMissed int
}

// issuedPrediction remembers what Observe needs about one answered request.
type issuedPrediction struct {
	raw, calibrated stochastic.Value
	// rawQ is the uncalibrated quantile grid the prediction carried (shared
	// with the core; never mutated) — the quantile calibrator scores the
	// realized quantile against it.
	rawQ []float64
}

// NewService builds the service: one fault-injectable CPU monitor per
// machine, a lazily grown set of bandwidth monitors, and the clock at
// virtual time zero. No measurements are taken until the clock advances.
func NewService(cfg Config) (*Service, error) {
	if cfg.Platform == nil {
		return nil, errors.New("predict: nil platform")
	}
	env, err := simenv.New(cfg.Platform, cfg.CPU, cfg.Net)
	if err != nil {
		return nil, err
	}
	period := cfg.Period
	if period == 0 {
		period = nws.DefaultPeriod
	}
	history := cfg.History
	if history == 0 {
		history = 512
	}
	prior := cfg.CPUPrior
	if prior == (stochastic.Value{}) {
		prior = DefaultCPUPrior
	}
	tracker, err := calib.New(cfg.Calibration)
	if err != nil {
		return nil, err
	}
	p := cfg.Platform.Size()
	s := &Service{
		name:     cfg.Platform.Name,
		plat:     cfg.Platform,
		env:      env,
		machines: make([]cluster.Machine, p),
		shards:   make([]monitorShard, p),
		bw:       make(map[float64]*monitorShard),
		period:   period,
		history:  history,
		prior:    prior,
		tracker:  tracker,
		issued:   make(map[uint64]issuedPrediction),
		metrics:  newServiceMetrics(cfg.Metrics, cfg.Platform.Name),
		distU:    buildDistUniforms(p + 1),
	}
	if !cfg.DisableTickCache {
		s.cache = newTickCache()
	}
	_, constant := cfg.Net.(load.Constant)
	s.netMon = !constant
	if s.link, err = cfg.Platform.Link(0, 1); err != nil {
		return nil, err
	}
	for i := 0; i < p; i++ {
		s.machines[i] = cfg.Platform.Machine(i)
		sensor, err := nws.CPUSensor(env, i)
		if err != nil {
			return nil, err
		}
		if cfg.Injector != nil {
			sensor = cfg.Injector.Sensor(i, sensor)
		}
		if s.shards[i].mon, err = nws.NewSensorMonitor(sensor, period, history); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Name returns the platform name the service answers for.
func (s *Service) Name() string { return s.name }

// Platform returns the platform description.
func (s *Service) Platform() *cluster.Platform { return s.plat }

// Spec returns the declarative spec the service was built from, or nil for
// a service assembled directly from a Config. Only spec-built services can
// be snapshotted.
func (s *Service) Spec() *PlatformSpec { return s.spec }

// Env exposes the simulated environment, read-only in virtual time — the
// seam execution backends (sor.NewSimBackend) attach to.
func (s *Service) Env() *simenv.Env { return s.env }

// Machines returns the platform's machine descriptions.
func (s *Service) Machines() []cluster.Machine {
	return append([]cluster.Machine(nil), s.machines...)
}

// Now returns the current virtual time, in virtual seconds.
func (s *Service) Now() float64 {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	return s.now
}

// CacheGeneration returns the tick cache's generation counter: the number
// of clock movements since the service was built (0 when the cache is
// disabled). The coherence invariant is generation == virtual clock — a
// cached forecast is never served across an Advance.
func (s *Service) CacheGeneration() uint64 { return s.cache.generation() }

// Advance moves the clock forward by dt virtual seconds, taking every
// sensor measurement that falls due.
func (s *Service) Advance(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("predict: negative advance %g", dt)
	}
	s.clockMu.Lock()
	defer s.clockMu.Unlock()
	return s.advanceToLocked(s.now + dt)
}

// AdvanceTo moves the clock to absolute virtual time t >= Now().
func (s *Service) AdvanceTo(t float64) error {
	s.clockMu.Lock()
	defer s.clockMu.Unlock()
	if t < s.now {
		return fmt.Errorf("predict: cannot advance backwards from %g to %g", s.now, t)
	}
	return s.advanceToLocked(t)
}

// advanceToLocked moves the clock under the exclusive clock lock: monitors
// run forward in parallel across shards, then the tick cache generation
// rolls so no stale forecast survives the tick boundary. A no-op advance
// (t == now) leaves the cache intact — monitor state cannot have changed.
//
// Parallel catch-up is safe and deterministic: every monitor's evolution
// is a pure function of its own sample stream (no cross-monitor state),
// so each shard lands bit-identical to a sequential sweep. It matters
// because the exclusive clock lock stalls all serving while monitors
// absorb samples, and the per-sample tournament work (EM mixture refits
// in particular) made the sequential sweep the advance-latency tail.
func (s *Service) advanceToLocked(t float64) error {
	moved := t != s.now
	s.now = t
	shards := make([]*monitorShard, 0, len(s.shards))
	for i := range s.shards {
		shards = append(shards, &s.shards[i])
	}
	s.bwMu.RLock()
	for _, sh := range s.bw {
		shards = append(shards, sh)
	}
	s.bwMu.RUnlock()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *monitorShard) {
			defer wg.Done()
			sh.mu.Lock()
			if sh.mon != nil {
				errs[i] = sh.mon.RunUntil(t)
			}
			sh.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	// First error in shard order, so a multi-failure advance reports the
	// same error the sequential sweep did.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if moved {
		s.cache.invalidate()
	}
	s.syncClockMetrics()
	return nil
}

// syncClockMetrics publishes the virtual clock and the fault-gap delta
// accumulated since the previous sync. Callers must hold clockMu (shared or
// exclusive); shard locks are taken briefly per monitor.
func (s *Service) syncClockMetrics() {
	if s.metrics == nil {
		return
	}
	missed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		missed += sh.mon.Gaps().Missed
		sh.mu.Unlock()
	}
	s.bwMu.RLock()
	bwShards := make([]*monitorShard, 0, len(s.bw))
	for _, sh := range s.bw {
		bwShards = append(bwShards, sh)
	}
	s.bwMu.RUnlock()
	for _, sh := range bwShards {
		sh.mu.Lock()
		if sh.mon != nil {
			missed += sh.mon.Gaps().Missed
		}
		sh.mu.Unlock()
	}
	s.metricsMu.Lock()
	if missed > s.lastMissed {
		s.metrics.recordClock(s.now, missed-s.lastMissed)
		s.lastMissed = missed
	} else {
		s.metrics.recordClock(s.now, 0)
	}
	s.metricsMu.Unlock()
}

func (s *Service) checkPlatform(name string) error {
	if name != "" && name != s.name {
		return fmt.Errorf("predict: request for platform %q on service for %q", name, s.name)
	}
	return nil
}

func validateRequest(req Request) error {
	if req.N < 3 {
		return fmt.Errorf("predict: grid size %d too small (need N >= 3)", req.N)
	}
	if req.Iterations <= 0 {
		return fmt.Errorf("predict: iterations must be positive, got %d", req.Iterations)
	}
	for _, l := range req.Levels {
		if !(l > 0 && l < 1) {
			return fmt.Errorf("predict: interval level %g outside (0,1)", l)
		}
	}
	return nil
}

// readLoads reads one stochastic load value per machine — the override when
// the request carries one, the gap-aware RobustReport fallback chain
// (forecast -> running mean -> prior) otherwise — plus the per-machine
// diagnostic reports and the distribution-valued report behind each value
// (the tournament winner's quantile grid, or a normal tabulation of the
// override). Callers hold the shared clock lock; each machine's shard lock
// is taken per pass. The two pipeline stages it spans are timed separately:
// monitor_read (catching every monitor up to the current virtual time —
// normally a no-op, since Advance already did) and forecast (producing the
// stochastic load reports).
func (s *Service) readLoads(override func(int, *nws.Monitor) (stochastic.Value, error)) ([]stochastic.Value, []MachineReport, []nws.LoadDist, error) {
	stopRead := s.metrics.stageTimer("monitor_read")
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.mon.RunUntil(s.now)
		sh.mu.Unlock()
		if err != nil {
			stopRead()
			return nil, nil, nil, err
		}
	}
	stopRead()
	stopForecast := s.metrics.stageTimer("forecast")
	defer stopForecast()
	loads := make([]stochastic.Value, len(s.shards))
	reports := make([]MachineReport, len(s.shards))
	dists := make([]nws.LoadDist, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if override != nil {
			v, err := override(i, sh.mon)
			if err != nil {
				sh.mu.Unlock()
				return nil, nil, nil, err
			}
			loads[i] = v
			dists[i] = overrideLoadDist(v)
		} else {
			loads[i] = sh.mon.RobustReport(s.now, s.prior)
			dists[i] = sh.mon.RobustDistReport(s.now, s.prior)
		}
		reports[i] = MachineReport{
			Machine:    i,
			Load:       loads[i],
			Raw:        s.env.RawCPUAvail(i, s.now),
			Staleness:  sh.mon.Staleness(),
			Widening:   sh.mon.DegradationFactor(),
			Gaps:       sh.mon.Gaps(),
			Forecaster: dists[i].Forecaster,
			Components: dists[i].Components,
		}
		sh.mu.Unlock()
		s.metrics.recordTournamentWin(dists[i].Forecaster)
	}
	return loads, reports, dists, nil
}

// overrideLoadDist tabulates a pinned load value's normal quantiles on the
// DistLevels grid — overrides carry no forecaster, so their distribution is
// the value read at face value.
func overrideLoadDist(v stochastic.Value) nws.LoadDist {
	qs := make([]float64, len(nws.DistLevels))
	for i, p := range nws.DistLevels {
		qs[i] = v.Quantile(p)
	}
	return nws.LoadDist{
		Quantiles:  qs,
		Components: []nws.Component{{Weight: 1, Mean: v.Mean, Sigma: v.Sigma()}},
		Forecaster: OverrideForecasterName,
	}
}

func (s *Service) choosePartition(req Request, loads []stochastic.Value) (*sor.Partition, error) {
	defer s.metrics.stageTimer("schedule")()
	if req.TimeBalanced {
		return sched.TimeBalancedPartition(req.N, s.machines, loads, s.link, timeBalanceRefinements)
	}
	return sched.SORPartition(req.N, s.machines, loads, req.Strategy)
}

// Partition chooses a strip decomposition from the current load reports
// under the request's strategy — the "schedule" step, split out so a run
// series can pin one decomposition (via Request.Partition) across many
// Predict calls, the way the paper fixes the schedule once per series.
func (s *Service) Partition(req Request) (*sor.Partition, error) {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	if err := s.checkPlatform(req.Platform); err != nil {
		return nil, err
	}
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	loads, _, _, err := s.readLoads(req.LoadOverride)
	if err != nil {
		return nil, err
	}
	return s.choosePartition(req, loads)
}

// bwReport returns the bandwidth fraction forecast for n's ghost-row-sized
// probe messages, creating the monitor on first use behind a double-checked
// per-shard lock: the shard is published under a brief map write lock, and
// the (expensive) monitor construction and catch-up happen under that
// shard's own lock, so a first-touch probe size can never stall Predicts
// for other probe sizes or other machines. Monitors are pure functions of
// virtual time, so a late-created monitor has exactly the history an
// early-created one would.
func (s *Service) bwReport(n int) (stochastic.Value, nws.GapStats, error) {
	probeBytes := float64(n-2) * 8
	s.bwMu.RLock()
	sh := s.bw[probeBytes]
	s.bwMu.RUnlock()
	if sh == nil {
		s.bwMu.Lock()
		if sh = s.bw[probeBytes]; sh == nil {
			sh = &monitorShard{}
			s.bw[probeBytes] = sh
		}
		s.bwMu.Unlock()
	}
	sh.mu.Lock()
	created := false
	if sh.mon == nil {
		mon, err := nws.NewBandwidthMonitor(s.env, 0, 1, probeBytes, s.period, s.history)
		if err != nil {
			sh.mu.Unlock()
			return stochastic.Value{}, nws.GapStats{}, err
		}
		if err := mon.RunUntil(s.now); err != nil {
			sh.mu.Unlock()
			return stochastic.Value{}, nws.GapStats{}, err
		}
		sh.mon = mon
		created = true
	}
	bw := sh.mon.RobustReport(s.now, stochastic.New(s.link.DedBW/2, s.link.DedBW/2))
	gaps := sh.mon.Gaps()
	sh.mu.Unlock()
	if created {
		// A first-use bandwidth monitor may have accumulated gaps while
		// catching up; fold them into the fault-gap counter.
		s.syncClockMetrics()
	}
	frac := bw.MulPoint(1 / s.link.DedBW)
	if frac.Mean <= 0.01 {
		frac = stochastic.New(0.01, frac.Spread)
	}
	return frac, gaps, nil
}

// Predict answers one request at the current virtual time: read per-machine
// load reports, choose (or reuse) the partition, parameterize the SOR
// structural model, and evaluate it to a stochastic prediction. Between two
// Advance calls the pipeline result for a given request shape is computed
// once and served from the tick cache (each hit still issues a fresh ledger
// ID and applies the current calibration multiplier). When the service
// carries a metrics registry, the call records per-stage wall-clock
// latencies (monitor_read -> forecast -> schedule -> model_eval on cache
// misses, plus the whole call as stage "predict") and the per-platform
// counters/gauges.
func (s *Service) Predict(req Request) (Prediction, error) {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	stop := s.metrics.stageTimer("predict")
	p, err := s.predictShared(req)
	stop()
	if err != nil {
		s.metrics.recordError()
		return Prediction{}, err
	}
	return p, nil
}

// PredictBatch answers many requests in one shared-clock visit: every
// request resolves against the same frozen tick, distinct request shapes
// run the pipeline once each, and repeated shapes are served from the tick
// cache. Results and errors are positional; a failed request leaves a zero
// Prediction and a non-nil error at its index without failing the rest.
func (s *Service) PredictBatch(reqs []Request) ([]Prediction, []error) {
	preds := make([]Prediction, len(reqs))
	errs := make([]error, len(reqs))
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	s.metrics.recordBatch(len(reqs))
	for i, req := range reqs {
		stop := s.metrics.stageTimer("predict")
		p, err := s.predictShared(req)
		stop()
		if err != nil {
			s.metrics.recordError()
			errs[i] = err
			continue
		}
		preds[i] = p
	}
	return preds, errs
}

// predictShared resolves one request under the shared clock lock: validate,
// fetch-or-compute the tick-scoped pipeline core, then apply the
// per-request overlay (calibration, ledger ID, accuracy snapshot).
func (s *Service) predictShared(req Request) (Prediction, error) {
	if err := s.checkPlatform(req.Platform); err != nil {
		return Prediction{}, err
	}
	if err := validateRequest(req); err != nil {
		return Prediction{}, err
	}
	core, err := s.resolveCore(req)
	if err != nil {
		return Prediction{}, err
	}
	return s.finishPrediction(core, req), nil
}

// resolveCore returns the pipeline result for req — from the tick cache
// when possible, computing (and memoizing) it on first touch. Uncacheable
// requests (pinned Partition or LoadOverride) always run the pipeline.
func (s *Service) resolveCore(req Request) (*predictionCore, error) {
	if s.cache == nil || !cacheable(req) {
		s.metrics.recordCacheMiss()
		return s.computeCore(req)
	}
	e := s.cache.entry(keyFor(req))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		s.metrics.recordCacheHit()
		return e.core, e.err
	}
	s.metrics.recordCacheMiss()
	e.core, e.err = s.computeCore(req)
	e.done = true
	return e.core, e.err
}

// computeCore runs the full monitor -> forecast -> schedule -> model
// pipeline once at the current tick. Callers hold the shared clock lock.
func (s *Service) computeCore(req Request) (*predictionCore, error) {
	loads, reports, dists, err := s.readLoads(req.LoadOverride)
	if err != nil {
		return nil, err
	}
	part := req.Partition
	if part == nil {
		if part, err = s.choosePartition(req, loads); err != nil {
			return nil, err
		}
	}
	params := structural.Params{structural.BWAvailParam: stochastic.Point(1)}
	bwFrac := stochastic.Point(1)
	var bwGaps nws.GapStats
	if s.netMon {
		// Production network: the NWS bandwidth monitor's forecast of
		// achieved bytes/s, expressed as a fraction of the dedicated link
		// rate. Same fallback chain as the CPU monitors; the prior claims
		// half the dedicated rate ± the full range.
		frac, gaps, err := s.bwReport(req.N)
		if err != nil {
			return nil, err
		}
		params[structural.BWAvailParam] = frac
		bwFrac = frac
		bwGaps = gaps
	}
	for i, l := range loads {
		params[structural.LoadParam(i)] = l
	}
	model := &structural.SORConfig{
		N:            req.N,
		Iterations:   req.Iterations,
		Partition:    part,
		Machines:     s.machines,
		MachineIdx:   sor.IdentityMapping(len(s.machines)),
		Link:         s.link,
		MaxStrategy:  req.MaxStrategy,
		IterationRel: req.IterationRel,
	}
	stopEval := s.metrics.stageTimer("model_eval")
	v, err := model.Predict(params)
	stopEval()
	if err != nil {
		return nil, err
	}
	return &predictionCore{
		raw:       v,
		distModel: model,
		distDists: dists,
		distTag:   dominantForecaster(dists),
		partition: part,
		loads:     reports,
		bandwidth: bwFrac,
		bwGaps:    bwGaps,
		time:      s.now,
	}, nil
}

// minAvailPoint floors the point availabilities the quantile transform
// evaluates the model at, matching the bandwidth-fraction floor: a widened
// tail quantile can cross zero, but the model needs a positive capacity.
const minAvailPoint = 0.01

// distSamples is how many joint load draws the distribution transform
// evaluates the structural model at. The grid resolves lazily — the first
// distribution-requesting prediction per (shape, tick) pays for it, the
// tick cache shares the result, and legacy requests never trigger it.
const distSamples = 64

// buildDistUniforms tabulates a fixed Latin-hypercube sample matrix:
// distSamples rows of dims uniforms, each column a stratified permutation
// of (i+0.5)/distSamples. The generator seed is a constant so every
// service — and every restore of a snapshot — evaluates the identical
// joint sample, keeping predictions reproducible.
func buildDistUniforms(dims int) [][]float64 {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	u := make([][]float64, distSamples)
	for i := range u {
		u[i] = make([]float64, dims)
	}
	for d := 0; d < dims; d++ {
		for i, p := range rng.Perm(distSamples) {
			u[p][d] = (float64(i) + 0.5) / distSamples
		}
	}
	return u
}

// computeDistGrid produces the raw execution-time quantile grid by an
// independence Monte Carlo transform of the per-machine load
// distributions: each Latin-hypercube row draws every machine's
// availability (and the bandwidth fraction) independently from its own
// forecast distribution by inverse CDF, the structural model maps the
// joint draw to an execution time, and the grid is the empirical
// DistLevels quantiles of the sampled times. Unlike a comonotone
// transform — which pins all machines to the same bad quantile at once
// and so prices an everyone-bursts-together event at the probability of
// one machine bursting — the joint sampling keeps the tail of the
// execution-time distribution proportional to how likely slow draws
// actually coincide. A model that rejects any draw degrades the whole
// grid to the raw value's normal quantiles.
func (s *Service) computeDistGrid(model *structural.SORConfig, dists []nws.LoadDist, bwFrac stochastic.Value, raw stochastic.Value) []float64 {
	times := make([]float64, len(s.distU))
	bwDim := len(dists)
	for i, u := range s.distU {
		params := structural.Params{structural.BWAvailParam: stochastic.Point(1)}
		if s.netMon {
			bw := bwFrac.Quantile(u[bwDim])
			params[structural.BWAvailParam] = stochastic.Point(math.Max(bw, minAvailPoint))
		}
		for m := range dists {
			q := nws.GridQuantile(dists[m].Quantiles, u[m])
			params[structural.LoadParam(m)] = stochastic.Point(math.Max(q, minAvailPoint))
		}
		v, err := model.Predict(params)
		if err != nil {
			return normalDistGrid(raw)
		}
		times[i] = v.Mean
	}
	sort.Float64s(times)
	grid := make([]float64, len(nws.DistLevels))
	for i, p := range nws.DistLevels {
		q, err := stats.Quantile(times, p)
		if err != nil {
			return normalDistGrid(raw)
		}
		grid[i] = q
	}
	monotonizeGrid(grid)
	return grid
}

// normalDistGrid tabulates a stochastic value's own (normal) quantiles on
// the DistLevels grid — the degraded form when the point-quantile transform
// cannot run.
func normalDistGrid(v stochastic.Value) []float64 {
	grid := make([]float64, len(nws.DistLevels))
	for i, p := range nws.DistLevels {
		grid[i] = v.Quantile(p)
	}
	return grid
}

// monotonizeGrid enforces a nondecreasing quantile curve in place.
// Empirical quantiles of the Monte Carlo sample are monotone by
// construction; this guards the invariant outright against ties and
// fallback paths.
func monotonizeGrid(grid []float64) {
	for i := 1; i < len(grid); i++ {
		if grid[i] < grid[i-1] {
			grid[i] = grid[i-1]
		}
	}
}

// dominantForecaster returns the most common per-machine forecaster tag,
// breaking ties toward the lowest machine index.
func dominantForecaster(dists []nws.LoadDist) string {
	best, bestCount := "", 0
	for i, d := range dists {
		count := 1
		for _, e := range dists[i+1:] {
			if e.Forecaster == d.Forecaster {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = d.Forecaster, count
		}
	}
	return best
}

// finishPrediction applies the per-request overlay to a (possibly shared)
// pipeline core: the calibrator's current multiplier, the per-level
// quantile calibration of the distribution grid (and any requested
// intervals), a fresh ledger ID, and the accuracy snapshot at issue time.
// The overlay runs identically on cached and uncached cores.
//
// The distribution grid resolves lazily here: only requests that ask
// (Distribution set, or any interval levels) trigger the Monte Carlo
// transform, and the core memoizes it for the rest of the tick. Outcomes
// of predictions that never asked carry no grid, so quantile calibration
// learns exclusively from distribution-valued traffic.
func (s *Service) finishPrediction(core *predictionCore, req Request) Prediction {
	levels := req.Levels
	cal := s.tracker.Calibrate(core.raw)
	scale := 1.0
	if core.raw.Spread > 0 {
		scale = cal.Spread / core.raw.Spread
	}
	var distRaw []float64
	if req.Distribution || len(levels) > 0 {
		distRaw = core.dist(s)
	}
	var dist PredictionDist
	if len(distRaw) == len(nws.DistLevels) {
		calQ := s.tracker.CalibrateQuantiles(make([]float64, 0, len(distRaw)), distRaw)
		dist = PredictionDist{
			Levels:     nws.DistLevels,
			Raw:        distRaw,
			Calibrated: calQ,
			Forecaster: core.distTag,
		}
		if len(levels) > 0 {
			dist.Intervals = make([]Interval, len(levels))
			for i, l := range levels {
				dist.Intervals[i] = Interval{
					Level: l,
					Lo:    nws.GridQuantile(calQ, (1-l)/2),
					Hi:    nws.GridQuantile(calQ, (1+l)/2),
				}
			}
		}
	}
	if len(levels) > 0 {
		s.metrics.recordQuantileRequest()
	}
	s.ledgerMu.Lock()
	id := s.issueLocked(core.raw, cal, distRaw)
	outstanding := len(s.issued)
	s.ledgerMu.Unlock()
	s.metrics.recordPredict(scale, outstanding)
	return Prediction{
		ID:               id,
		Value:            cal,
		Raw:              core.raw,
		CalibrationScale: scale,
		Calibration:      s.tracker.Snapshot(),
		Partition:        core.partition,
		Time:             core.time,
		Loads:            core.loads,
		Bandwidth:        core.bandwidth,
		BWGaps:           core.bwGaps,
		Dist:             dist,
	}
}

// issueLocked registers a freshly answered prediction in the Observe
// ledger, evicting the oldest still-unobserved entry once maxOutstanding
// predictions are truly outstanding. Observe deletes from issued but leaves
// the ID behind in issuedOrder as a dead slot; those never count against
// the bound and are skipped (and dropped) during eviction, and
// compactOrderLocked rebuilds the order slice before dead slots dominate.
// Callers hold ledgerMu.
func (s *Service) issueLocked(raw, calibrated stochastic.Value, rawQ []float64) uint64 {
	s.nextID++
	id := s.nextID
	if len(s.issued) >= maxOutstanding {
		for len(s.issuedOrder) > 0 {
			oldest := s.issuedOrder[0]
			s.issuedOrder = s.issuedOrder[1:]
			if _, live := s.issued[oldest]; live {
				delete(s.issued, oldest)
				break
			}
		}
	}
	s.issued[id] = issuedPrediction{raw: raw, calibrated: calibrated, rawQ: rawQ}
	s.issuedOrder = append(s.issuedOrder, id)
	s.compactOrderLocked()
	return id
}

// compactOrderLocked rebuilds issuedOrder without dead slots once they
// outnumber live entries. The rebuild allocates a fresh backing array, so
// the issuedOrder[1:] reslicing above can never pin retired memory
// indefinitely; with the 2x trigger the cost is amortized O(1) per issue.
// Callers hold ledgerMu.
func (s *Service) compactOrderLocked() {
	const compactFloor = 64
	if len(s.issuedOrder) < compactFloor || len(s.issuedOrder) < 2*len(s.issued) {
		return
	}
	compact := make([]uint64, 0, len(s.issued))
	for _, id := range s.issuedOrder {
		if _, live := s.issued[id]; live {
			compact = append(compact, id)
		}
	}
	s.issuedOrder = compact
}

// Observe closes the loop for one prediction: the measured runtime (in
// virtual seconds, like the prediction it answers) is fed to the
// platform's accuracy tracker, which updates capture statistics,
// adapts the interval multiplier, and checks for regime drift. The
// prediction ID must have been issued by this service and not yet observed;
// the returned snapshot reflects the state after ingestion.
func (s *Service) Observe(id uint64, actual float64) (calib.Snapshot, error) {
	if actual <= 0 {
		return calib.Snapshot{}, fmt.Errorf("predict: non-positive actual runtime %g", actual)
	}
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	s.ledgerMu.Lock()
	ip, ok := s.issued[id]
	if ok {
		delete(s.issued, id)
	}
	outstanding := len(s.issued)
	s.ledgerMu.Unlock()
	if !ok {
		return calib.Snapshot{}, fmt.Errorf("predict: prediction id %d was never issued by platform %q (or was already observed)", id, s.name)
	}
	_, drifted := s.tracker.Observe(calib.Outcome{
		ID:           id,
		Time:         s.now,
		Raw:          ip.raw,
		Calibrated:   ip.calibrated,
		Actual:       actual,
		RawQuantiles: ip.rawQ,
	})
	s.metrics.recordObserve(s.tracker.Scale(), outstanding, drifted)
	return s.tracker.Snapshot(), nil
}

// Accuracy returns the platform's online accuracy and calibration state.
// Safe for concurrent use (the tracker carries its own lock).
func (s *Service) Accuracy() calib.Snapshot {
	return s.tracker.Snapshot()
}

// Outstanding reports how many issued predictions await an Observe call.
func (s *Service) Outstanding() int {
	s.ledgerMu.Lock()
	defer s.ledgerMu.Unlock()
	return len(s.issued)
}

// Reports returns the current per-machine load reports (robust fallback
// chain) without evaluating a model — the /report endpoint's view.
func (s *Service) Reports() []MachineReport {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	reports := make([]MachineReport, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		ld := sh.mon.RobustDistReport(s.now, s.prior)
		reports[i] = MachineReport{
			Machine:    i,
			Load:       sh.mon.RobustReport(s.now, s.prior),
			Raw:        s.env.RawCPUAvail(i, s.now),
			Staleness:  sh.mon.Staleness(),
			Widening:   sh.mon.DegradationFactor(),
			Gaps:       sh.mon.Gaps(),
			Forecaster: ld.Forecaster,
			Components: ld.Components,
		}
		sh.mu.Unlock()
	}
	return reports
}

// CPUGaps returns each CPU monitor's per-fault-class gap counters.
func (s *Service) CPUGaps() []nws.GapStats {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	gaps := make([]nws.GapStats, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		gaps[i] = sh.mon.Gaps()
		sh.mu.Unlock()
	}
	return gaps
}

// BWGaps returns the bandwidth monitors' gap counters, summed across probe
// sizes (LongestGap is the max). It is zero when the network is
// contention-free or no prediction has consulted bandwidth yet.
func (s *Service) BWGaps() nws.GapStats {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	s.bwMu.RLock()
	bwShards := make([]*monitorShard, 0, len(s.bw))
	for _, sh := range s.bw {
		bwShards = append(bwShards, sh)
	}
	s.bwMu.RUnlock()
	var total nws.GapStats
	for _, sh := range bwShards {
		sh.mu.Lock()
		if sh.mon == nil {
			sh.mu.Unlock()
			continue
		}
		g := sh.mon.Gaps()
		sh.mu.Unlock()
		total.Clean += g.Clean
		total.Recovered += g.Recovered
		total.Retries += g.Retries
		total.Dropped += g.Dropped
		total.Outage += g.Outage
		total.TransientLost += g.TransientLost
		total.SensorErrors += g.SensorErrors
		total.Missed += g.Missed
		if g.LongestGap > total.LongestGap {
			total.LongestGap = g.LongestGap
		}
	}
	return total
}
