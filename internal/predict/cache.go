package predict

import (
	"sync"

	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// tickCache memoizes the expensive half of Predict — monitor read, robust
// forecast, partition choice, and structural-model evaluation — within one
// virtual tick. The whole pipeline is a pure function of (monitor state,
// request shape), and monitor state only changes when the virtual clock
// advances, so every Predict between two Advance calls that shares a
// request shape can share one computed predictionCore.
//
// Coherence rule: cache generation == virtual clock. Advance bumps the
// generation and drops every entry under the service's clock write lock, so
// a cached core can never be served across a tick boundary — readers hold
// the clock read lock for the whole lookup-or-compute, and the swap happens
// only while no reader is inside.
//
// Per-request state (ledger ID, calibration multiplier, accuracy snapshot)
// is deliberately not cached: each hit still issues a fresh ID and applies
// the calibrator's current scale, so the Observe feedback loop behaves
// exactly as it does on the uncached path.
type tickCache struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[cacheKey]*cacheEntry
}

// cacheKey is the request shape the pipeline output depends on. Requests
// carrying a pinned Partition or a LoadOverride bypass the cache entirely
// (the experiments' knobs — their output depends on caller state the key
// cannot name).
type cacheKey struct {
	n, iterations int
	strategy      sched.Strategy
	timeBalanced  bool
	maxStrategy   stochastic.MaxStrategy
	iterationRel  structural.Relation
}

// cacheable reports whether req's pipeline output is a pure function of the
// monitor state and the key fields.
func cacheable(req Request) bool {
	return req.Partition == nil && req.LoadOverride == nil
}

func keyFor(req Request) cacheKey {
	return cacheKey{
		n:            req.N,
		iterations:   req.Iterations,
		strategy:     req.Strategy,
		timeBalanced: req.TimeBalanced,
		maxStrategy:  req.MaxStrategy,
		iterationRel: req.IterationRel,
	}
}

// cacheEntry is one memoized pipeline result. The first goroutine to reach
// a fresh entry computes under the entry lock; concurrent requests for the
// same shape block on it and then read the result, so the pipeline runs at
// most once per (shape, tick) even under a request storm.
type cacheEntry struct {
	mu   sync.Mutex
	gen  uint64 // generation stamped at creation, for diagnostics
	done bool
	core *predictionCore
	err  error
}

// predictionCore is the tick-scoped, request-shape-scoped part of a
// Prediction: everything Predict returns except the per-request ledger ID
// and calibration overlay. Loads and Partition are shared across every
// prediction served from one core; callers own Prediction values but must
// not mutate these slices (the pre-cache contract already shared Partition).
type predictionCore struct {
	raw       stochastic.Value
	partition *sor.Partition
	loads     []MachineReport
	bandwidth stochastic.Value
	bwGaps    nws.GapStats
	time      float64
}

func newTickCache() *tickCache {
	return &tickCache{entries: make(map[cacheKey]*cacheEntry)}
}

// invalidate starts a new generation, dropping every entry. Callers must
// hold the owning service's clock write lock so no reader is mid-lookup.
func (c *tickCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gen++
	c.entries = make(map[cacheKey]*cacheEntry)
	c.mu.Unlock()
}

// generation returns the current generation: the number of clock movements
// since the service was built.
func (c *tickCache) generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// entry returns the live entry for key, creating an empty one on first
// touch. The double-checked read keeps the common hit path on the shared
// read lock.
func (c *tickCache) entry(key cacheKey) *cacheEntry {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		return e
	}
	c.mu.Lock()
	if e = c.entries[key]; e == nil {
		e = &cacheEntry{gen: c.gen}
		c.entries[key] = e
	}
	c.mu.Unlock()
	return e
}
