package predict

import (
	"sync"

	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// tickCache memoizes the expensive half of Predict — monitor read, robust
// forecast, partition choice, and structural-model evaluation — within one
// virtual tick. The whole pipeline is a pure function of (monitor state,
// request shape), and monitor state only changes when the virtual clock
// advances, so every Predict between two Advance calls that shares a
// request shape can share one computed predictionCore.
//
// Coherence rule: cache generation == virtual clock. Advance bumps the
// generation and drops every entry under the service's clock write lock, so
// a cached core can never be served across a tick boundary — readers hold
// the clock read lock for the whole lookup-or-compute, and the swap happens
// only while no reader is inside.
//
// Per-request state (ledger ID, calibration multiplier, accuracy snapshot)
// is deliberately not cached: each hit still issues a fresh ID and applies
// the calibrator's current scale, so the Observe feedback loop behaves
// exactly as it does on the uncached path.
type tickCache struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[cacheKey]*cacheEntry
}

// cacheKey is the request shape the pipeline output depends on. Requests
// carrying a pinned Partition or a LoadOverride bypass the cache entirely
// (the experiments' knobs — their output depends on caller state the key
// cannot name).
type cacheKey struct {
	n, iterations int
	strategy      sched.Strategy
	timeBalanced  bool
	maxStrategy   stochastic.MaxStrategy
	iterationRel  structural.Relation
}

// cacheable reports whether req's pipeline output is a pure function of the
// monitor state and the key fields.
func cacheable(req Request) bool {
	return req.Partition == nil && req.LoadOverride == nil
}

func keyFor(req Request) cacheKey {
	return cacheKey{
		n:            req.N,
		iterations:   req.Iterations,
		strategy:     req.Strategy,
		timeBalanced: req.TimeBalanced,
		maxStrategy:  req.MaxStrategy,
		iterationRel: req.IterationRel,
	}
}

// cacheEntry is one memoized pipeline result. The first goroutine to reach
// a fresh entry computes under the entry lock; concurrent requests for the
// same shape block on it and then read the result, so the pipeline runs at
// most once per (shape, tick) even under a request storm.
type cacheEntry struct {
	mu   sync.Mutex
	gen  uint64 // generation stamped at creation, for diagnostics
	done bool
	core *predictionCore
	err  error
}

// predictionCore is the tick-scoped, request-shape-scoped part of a
// Prediction: everything Predict returns except the per-request ledger ID
// and calibration overlay. Loads and Partition are shared across every
// prediction served from one core; callers own Prediction values but must
// not mutate these slices (the pre-cache contract already shared Partition).
type predictionCore struct {
	raw stochastic.Value
	// The distribution grid is a lazy memo: distModel and distDists hold
	// the frozen pipeline inputs, and the first distribution-requesting
	// prediction served from this core runs the Latin-hypercube Monte
	// Carlo transform under distOnce, filling distRaw (the uncalibrated
	// execution-time quantile grid at nws.DistLevels). Requests that never
	// ask never pay the distSamples model evaluations. Laziness cannot
	// change the result: the clock read lock is held for the whole serve,
	// so the inputs are the same whenever within the tick the transform
	// runs. Like loads and partition, distRaw is shared across predictions
	// served from this core and must not be mutated; the per-level
	// conformal calibration of the grid is per-request overlay, applied
	// outside the memo exactly like the symmetric half-width multiplier.
	distOnce  sync.Once
	distRaw   []float64
	distModel *structural.SORConfig
	distDists []nws.LoadDist
	distTag   string
	partition *sor.Partition
	loads     []MachineReport
	bandwidth stochastic.Value
	bwGaps    nws.GapStats
	time      float64
}

// dist resolves the memoized distribution grid, running the Monte Carlo
// transform on first demand. Safe for concurrent callers; the once-guard
// means the transform runs at most once per core even under a request
// storm, and a core that is never asked never runs it. Callers hold the
// service's clock read lock, so the frozen inputs cannot move underneath
// the computation.
func (c *predictionCore) dist(s *Service) []float64 {
	c.distOnce.Do(func() {
		stop := s.metrics.stageTimer("dist_grid")
		c.distRaw = s.computeDistGrid(c.distModel, c.distDists, c.bandwidth, c.raw)
		stop()
	})
	return c.distRaw
}

func newTickCache() *tickCache {
	return &tickCache{entries: make(map[cacheKey]*cacheEntry)}
}

// invalidate starts a new generation, dropping every entry. Callers must
// hold the owning service's clock write lock so no reader is mid-lookup.
func (c *tickCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gen++
	c.entries = make(map[cacheKey]*cacheEntry)
	c.mu.Unlock()
}

// generation returns the current generation: the number of clock movements
// since the service was built.
func (c *tickCache) generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// entry returns the live entry for key, creating an empty one on first
// touch. The double-checked read keeps the common hit path on the shared
// read lock.
func (c *tickCache) entry(key cacheKey) *cacheEntry {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		return e
	}
	c.mu.Lock()
	if e = c.entries[key]; e == nil {
		e = &cacheEntry{gen: c.gen}
		c.entries[key] = e
	}
	c.mu.Unlock()
	return e
}
