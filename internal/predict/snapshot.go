package predict

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"prodpred/internal/calib"
	"prodpred/internal/nws"
)

// Snapshot format: a versioned little-endian binary image of the full
// fleet — every registered platform's declarative spec plus, for live
// (instantiated) platforms, the complete dynamic service state:
//
//   - the virtual clock,
//   - every CPU and bandwidth monitor (ring history, forecaster-mix
//     postmortem scores, gap counters, staleness),
//   - the prediction ledger (next ID and issued-but-unobserved entries in
//     issue order),
//   - the calibration tracker (window, CUSUM, regime state, drift log).
//
// Restore rebuilds each platform's static structure from its embedded
// spec — load processes and fault decisions are pure functions of
// (seed, virtual time), so they need no serialization — and imports the
// dynamic state on top. A restored fleet is bit-identical to one that
// never stopped: same predictions, same IDs, same calibration, asserted
// by TestSnapshotRestoreBitIdentical.
//
// Version history. v2 added the distribution-valued prediction state:
// per-monitor forecaster-tournament sections (scores, win counts, the
// empirical forecaster's residual window, the mixture forecaster's cached
// fit), per-window-rec quantile nonconformity scores and realized
// quantiles in the tracker, and the raw quantile grid per ledger entry.
// ReadSnapshot still accepts v1 images: the v2-only state decodes
// zero-valued, which resets every tournament to its incumbent and leaves
// quantile calibration at identity until fresh outcomes accumulate —
// exactly the cold-start behavior of a new tournament. WriteSnapshot
// always emits the current version, so restoring a v1 image and
// re-snapshotting migrates it to v2.
const (
	snapshotMagic     = "PPSNAP"
	snapshotVersion   = 2
	snapshotVersionV1 = 1
)

// snapEnc builds the snapshot image with append-only little-endian
// primitives.
type snapEnc struct {
	b []byte
}

func (e *snapEnc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *snapEnc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *snapEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *snapEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *snapEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *snapEnc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *snapEnc) str(v string) { e.bytes([]byte(v)) }

// f64s writes a length-prefixed float64 slice (nil and empty both encode
// as length 0).
func (e *snapEnc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// snapDec consumes a snapshot image; the first malformed read poisons the
// decoder and every subsequent read returns zero values, so call sites
// check err once per section.
type snapDec struct {
	b   []byte
	off int
	ver uint32 // snapshot format version being decoded
	err error
}

func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *snapDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("predict: snapshot truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *snapDec) u32() uint32 {
	if v := d.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (d *snapDec) u64() uint64 {
	if v := d.take(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

func (d *snapDec) i64() int64   { return int64(d.u64()) }
func (d *snapDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *snapDec) boolean() bool {
	if v := d.take(1); v != nil {
		return v[0] != 0
	}
	return false
}

// count reads a u32 length and bounds-checks it against the remaining
// bytes at elemSize each, so a corrupt length cannot drive a huge
// allocation.
func (d *snapDec) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.b)-d.off {
		d.fail("predict: snapshot count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *snapDec) bytes() []byte { return d.take(d.count(1)) }
func (d *snapDec) str() string   { return string(d.bytes()) }

// f64s reads a length-prefixed float64 slice; length 0 decodes as nil so a
// round trip through nil is exact.
func (d *snapDec) f64s() []float64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// WriteSnapshot serializes the full fleet — cold specs and live service
// state — to w. Every live platform must have been built from a spec
// (Register a spec-less Service and the snapshot fails: restore would
// have no way to rebuild its structure). Platforms are written in name
// order, so equal fleets produce byte-identical snapshots.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	type platSnap struct {
		name  string
		entry *platformEntry
	}
	var plats []platSnap
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name, e := range sh.entries {
			plats = append(plats, platSnap{name: name, entry: e})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(plats, func(i, j int) bool { return plats[i].name < plats[j].name })

	e := &snapEnc{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, snapshotMagic...)
	e.u32(snapshotVersion)
	e.u32(uint32(len(plats)))
	for _, p := range plats {
		p.entry.mu.Lock()
		svc, built := p.entry.svc, p.entry.built && p.entry.err == nil
		p.entry.mu.Unlock()
		live := built && svc != nil
		var spec *PlatformSpec
		if live {
			spec = svc.Spec()
		} else {
			spec = p.entry.spec
		}
		if spec == nil {
			return fmt.Errorf("predict: platform %q was not built from a spec; cannot snapshot", p.name)
		}
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return fmt.Errorf("predict: encoding spec %q: %w", p.name, err)
		}
		e.str(p.name)
		e.bytes(specJSON)
		e.boolean(live)
		if live {
			svc.exportTo(e)
		}
	}
	_, err := w.Write(e.b)
	return err
}

// ReadSnapshot rebuilds a fleet registry from a snapshot image: cold specs
// re-register cold, live platforms are reconstructed from their spec and
// their dynamic state imported, so the restored registry continues exactly
// where the snapshotted one stopped.
func ReadSnapshot(rd io.Reader, opts RegistryOptions) (*Registry, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("predict: reading snapshot: %w", err)
	}
	d := &snapDec{b: data}
	if got := string(d.take(len(snapshotMagic))); d.err == nil && got != snapshotMagic {
		return nil, fmt.Errorf("predict: bad snapshot magic %q", got)
	}
	if v := d.u32(); d.err == nil {
		if v != snapshotVersion && v != snapshotVersionV1 {
			return nil, fmt.Errorf("predict: unsupported snapshot version %d (want %d or %d)", v, snapshotVersionV1, snapshotVersion)
		}
		d.ver = v
	}
	reg := NewRegistryWith(opts)
	n := d.count(1)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		specJSON := d.bytes()
		live := d.boolean()
		if d.err != nil {
			break
		}
		var spec PlatformSpec
		if err := json.Unmarshal(specJSON, &spec); err != nil {
			return nil, fmt.Errorf("predict: decoding spec %q: %w", name, err)
		}
		if spec.Name != name {
			return nil, fmt.Errorf("predict: snapshot spec name %q does not match entry %q", spec.Name, name)
		}
		if !live {
			if err := reg.RegisterSpec(spec); err != nil {
				return nil, err
			}
			continue
		}
		svc, err := restoreService(&spec, reg, d)
		if err != nil {
			return nil, fmt.Errorf("predict: restoring platform %q: %w", name, err)
		}
		if err := reg.registerRestored(svc.Spec(), svc); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("predict: %d trailing bytes after snapshot", len(d.b)-d.off)
	}
	return reg, nil
}

// restoreService rebuilds one live platform: static structure from the
// spec (no warmup — the imported clock supersedes it), dynamic state from
// the decoder.
func restoreService(spec *PlatformSpec, reg *Registry, d *snapDec) (*Service, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Metrics = reg.metrics
	svc, err := NewService(cfg)
	if err != nil {
		return nil, err
	}
	svc.spec = spec.clone()
	if err := svc.importFrom(d); err != nil {
		return nil, err
	}
	return svc, nil
}

// exportTo writes the service's full dynamic state. It takes the clock
// lock exclusively, so the image is a consistent cut: no Predict, Observe,
// or Advance is in flight while the state is read.
func (s *Service) exportTo(e *snapEnc) {
	s.clockMu.Lock()
	defer s.clockMu.Unlock()

	e.f64(s.now)

	// CPU monitors, machine order.
	e.u32(uint32(len(s.shards)))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.mon.ExportState()
		sh.mu.Unlock()
		encodeMonitorState(e, st)
	}

	// Bandwidth monitors, sorted by probe size for a deterministic image.
	s.bwMu.RLock()
	probes := make([]float64, 0, len(s.bw))
	for p := range s.bw {
		probes = append(probes, p)
	}
	s.bwMu.RUnlock()
	sort.Float64s(probes)
	e.u32(uint32(len(probes)))
	for _, p := range probes {
		s.bwMu.RLock()
		sh := s.bw[p]
		s.bwMu.RUnlock()
		e.f64(p)
		sh.mu.Lock()
		if sh.mon == nil {
			e.boolean(false)
		} else {
			e.boolean(true)
			encodeMonitorState(e, sh.mon.ExportState())
		}
		sh.mu.Unlock()
	}

	// Prediction ledger: live entries in issue order (dead slots dropped —
	// they carry no state the restored eviction path could need).
	s.ledgerMu.Lock()
	e.u64(s.nextID)
	liveOrder := make([]uint64, 0, len(s.issued))
	for _, id := range s.issuedOrder {
		if _, ok := s.issued[id]; ok {
			liveOrder = append(liveOrder, id)
		}
	}
	e.u32(uint32(len(liveOrder)))
	for _, id := range liveOrder {
		ip := s.issued[id]
		e.u64(id)
		e.f64(ip.raw.Mean)
		e.f64(ip.raw.Spread)
		e.f64(ip.calibrated.Mean)
		e.f64(ip.calibrated.Spread)
		e.f64s(ip.rawQ)
	}
	s.ledgerMu.Unlock()

	encodeTrackerState(e, s.tracker.ExportState())
}

// importFrom replaces a freshly built service's dynamic state with a
// decoded snapshot section. The service must not yet be published to other
// goroutines.
func (s *Service) importFrom(d *snapDec) error {
	s.now = d.f64()

	nCPU := d.count(1)
	if d.err == nil && nCPU != len(s.shards) {
		return fmt.Errorf("predict: snapshot has %d CPU monitors, platform has %d machines", nCPU, len(s.shards))
	}
	for i := 0; i < nCPU && d.err == nil; i++ {
		st := decodeMonitorState(d)
		if d.err != nil {
			break
		}
		if err := s.shards[i].mon.ImportState(st); err != nil {
			return err
		}
	}

	nBW := d.count(1)
	for i := 0; i < nBW && d.err == nil; i++ {
		probe := d.f64()
		sh := &monitorShard{}
		if d.boolean() {
			st := decodeMonitorState(d)
			if d.err != nil {
				break
			}
			mon, err := nws.NewBandwidthMonitor(s.env, 0, 1, probe, s.period, s.history)
			if err != nil {
				return err
			}
			if err := mon.ImportState(st); err != nil {
				return err
			}
			sh.mon = mon
		}
		s.bw[probe] = sh
	}

	s.nextID = d.u64()
	nLedger := d.count(8 + 4*8)
	s.issuedOrder = make([]uint64, 0, nLedger)
	for i := 0; i < nLedger && d.err == nil; i++ {
		id := d.u64()
		ip := issuedPrediction{}
		ip.raw.Mean = d.f64()
		ip.raw.Spread = d.f64()
		ip.calibrated.Mean = d.f64()
		ip.calibrated.Spread = d.f64()
		if d.ver >= 2 {
			ip.rawQ = d.f64s()
		}
		s.issued[id] = ip
		s.issuedOrder = append(s.issuedOrder, id)
	}

	ts := decodeTrackerState(d)
	if d.err != nil {
		return d.err
	}
	if err := s.tracker.ImportState(ts); err != nil {
		return err
	}

	// Seed the metrics delta baseline so the first post-restore advance
	// exports only new gaps, not the whole historical total again.
	missed := 0
	for i := range s.shards {
		missed += s.shards[i].mon.Gaps().Missed
	}
	for _, sh := range s.bw {
		if sh.mon != nil {
			missed += sh.mon.Gaps().Missed
		}
	}
	s.lastMissed = missed
	return nil
}

func encodeMonitorState(e *snapEnc, st nws.MonitorState) {
	e.f64(st.NextT)
	e.boolean(st.Started)
	e.f64(st.Stale)
	e.i64(int64(st.CurGap))
	g := st.Stats
	for _, v := range []int{g.Clean, g.Recovered, g.Retries, g.Dropped, g.Outage, g.TransientLost, g.SensorErrors, g.Missed, g.LongestGap} {
		e.i64(int64(v))
	}
	e.u32(uint32(len(st.Times)))
	for i := range st.Times {
		e.f64(st.Times[i])
		e.f64(st.Values[i])
	}
	e.u32(uint32(len(st.MixSqErr)))
	for i := range st.MixSqErr {
		e.f64(st.MixSqErr[i])
		e.i64(int64(st.MixN[i]))
	}
	// v2: the distribution-forecaster tournament.
	ts := st.Tournament
	e.u32(uint32(len(ts.Loss)))
	for i := range ts.Loss {
		e.f64(ts.Loss[i])
		e.f64(ts.Weight[i])
		e.i64(ts.Wins[i])
	}
	e.f64s(ts.Residuals)
	e.i64(int64(ts.FitObs))
	e.u32(uint32(len(ts.FitModes)))
	for _, c := range ts.FitModes {
		e.f64(c.Weight)
		e.f64(c.Mean)
		e.f64(c.Sigma)
	}
}

func decodeMonitorState(d *snapDec) nws.MonitorState {
	var st nws.MonitorState
	st.NextT = d.f64()
	st.Started = d.boolean()
	st.Stale = d.f64()
	st.CurGap = int(d.i64())
	g := &st.Stats
	for _, p := range []*int{&g.Clean, &g.Recovered, &g.Retries, &g.Dropped, &g.Outage, &g.TransientLost, &g.SensorErrors, &g.Missed, &g.LongestGap} {
		*p = int(d.i64())
	}
	nHist := d.count(16)
	st.Times = make([]float64, nHist)
	st.Values = make([]float64, nHist)
	for i := 0; i < nHist; i++ {
		st.Times[i] = d.f64()
		st.Values[i] = d.f64()
	}
	nMix := d.count(16)
	st.MixSqErr = make([]float64, nMix)
	st.MixN = make([]int, nMix)
	for i := 0; i < nMix; i++ {
		st.MixSqErr[i] = d.f64()
		st.MixN[i] = int(d.i64())
	}
	if d.ver >= 2 {
		ts := &st.Tournament
		nTour := d.count(24)
		if nTour > 0 {
			ts.Loss = make([]float64, nTour)
			ts.Weight = make([]float64, nTour)
			ts.Wins = make([]int64, nTour)
			for i := 0; i < nTour; i++ {
				ts.Loss[i] = d.f64()
				ts.Weight[i] = d.f64()
				ts.Wins[i] = d.i64()
			}
		}
		ts.Residuals = d.f64s()
		ts.FitObs = int(d.i64())
		nModes := d.count(24)
		if nModes > 0 {
			ts.FitModes = make([]nws.Component, nModes)
			for i := 0; i < nModes; i++ {
				ts.FitModes[i].Weight = d.f64()
				ts.FitModes[i].Mean = d.f64()
				ts.FitModes[i].Sigma = d.f64()
			}
		}
	}
	// On a v1 image the tournament stays zero-valued: import resets it to
	// the incumbent, the documented v1 -> v2 migration semantics.
	return st
}

func encodeTrackerState(e *snapEnc, st calib.State) {
	e.u32(uint32(len(st.Window)))
	for _, r := range st.Window {
		e.u64(r.ID)
		e.f64(r.Time)
		e.f64(r.Z)
		e.f64(r.Score)
		e.f64(r.Signed)
		e.f64(r.Abs)
		e.f64(r.RawW)
		e.f64(r.CalW)
		e.boolean(r.RawIn)
		e.boolean(r.CalIn)
		e.boolean(r.Armed)
		e.boolean(r.Excluded)
		// v2: per-quantile calibration evidence.
		e.boolean(r.Qok)
		e.f64s(r.QsLo)
		e.f64s(r.QsHi)
		e.f64(r.QRel)
		e.f64(r.Pit)
	}
	e.u32(uint32(len(st.Drifts)))
	for _, ev := range st.Drifts {
		e.f64(ev.Time)
		e.i64(int64(ev.Seq))
		e.str(ev.Reason)
		e.f64(ev.Stat)
	}
	e.i64(int64(st.Observed))
	e.i64(int64(st.CumRawIn))
	e.i64(int64(st.CumCalIn))
	e.f64(st.LastTime)
	e.i64(int64(st.SinceReset))
	e.f64(st.Scale)
	e.i64(int64(st.BaseN))
	e.f64(st.BaseSum)
	e.f64(st.CusumPos)
	e.f64(st.CusumNeg)
	e.i64(int64(st.SinceCheck))
	e.i64(int64(st.BaseModes))
}

func decodeTrackerState(d *snapDec) calib.State {
	var st calib.State
	nWin := d.count(8 + 7*8 + 4)
	st.Window = make([]calib.WindowRec, nWin)
	for i := 0; i < nWin; i++ {
		r := &st.Window[i]
		r.ID = d.u64()
		r.Time = d.f64()
		r.Z = d.f64()
		r.Score = d.f64()
		r.Signed = d.f64()
		r.Abs = d.f64()
		r.RawW = d.f64()
		r.CalW = d.f64()
		r.RawIn = d.boolean()
		r.CalIn = d.boolean()
		r.Armed = d.boolean()
		r.Excluded = d.boolean()
		if d.ver >= 2 {
			r.Qok = d.boolean()
			r.QsLo = d.f64s()
			r.QsHi = d.f64s()
			r.QRel = d.f64()
			r.Pit = d.f64()
		}
	}
	nDrifts := d.count(8 + 8 + 4 + 8)
	st.Drifts = make([]calib.DriftEvent, nDrifts)
	for i := 0; i < nDrifts; i++ {
		st.Drifts[i].Time = d.f64()
		st.Drifts[i].Seq = int(d.i64())
		st.Drifts[i].Reason = d.str()
		st.Drifts[i].Stat = d.f64()
	}
	st.Observed = int(d.i64())
	st.CumRawIn = int(d.i64())
	st.CumCalIn = int(d.i64())
	st.LastTime = d.f64()
	st.SinceReset = int(d.i64())
	st.Scale = d.f64()
	st.BaseN = int(d.i64())
	st.BaseSum = d.f64()
	st.CusumPos = d.f64()
	st.CusumNeg = d.f64()
	st.SinceCheck = int(d.i64())
	st.BaseModes = int(d.i64())
	return st
}
