package predict

import (
	"testing"

	"prodpred/internal/stochastic"
)

func ledgerService(t *testing.T) *Service {
	t.Helper()
	cfg, err := SimulatedConfig(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestLedgerDeadSlotsDoNotEvict is the unit-level regression for the
// eviction bug: Observe leaves dead slots behind in issuedOrder, and the
// old bound (on order length, not live count) let them evict a live
// prediction while only a handful were truly outstanding.
func TestLedgerDeadSlotsDoNotEvict(t *testing.T) {
	svc := ledgerService(t)
	v := stochastic.New(1, 0.1)

	svc.ledgerMu.Lock()
	first := svc.issueLocked(v, v, nil)
	// maxOutstanding observed round-trips: each leaves a dead slot the old
	// accounting would have counted against the retention bound.
	for i := 0; i < maxOutstanding; i++ {
		id := svc.issueLocked(v, v, nil)
		delete(svc.issued, id) // what Observe does to the ledger
	}
	next := svc.issueLocked(v, v, nil)
	_, firstLive := svc.issued[first]
	_, nextLive := svc.issued[next]
	outstanding := len(svc.issued)
	orderLen, liveLen := len(svc.issuedOrder), len(svc.issued)
	svc.ledgerMu.Unlock()

	if !firstLive {
		t.Error("oldest live prediction was evicted while only 2 were outstanding")
	}
	if !nextLive {
		t.Error("freshly issued prediction missing from ledger")
	}
	if outstanding != 2 {
		t.Errorf("outstanding = %d, want 2", outstanding)
	}
	// The compaction bound: dead slots may linger, but never dominate past
	// the amortization threshold.
	if orderLen > 2*liveLen+64 {
		t.Errorf("issuedOrder holds %d slots for %d live entries — dead slots are not being compacted", orderLen, liveLen)
	}
}

// TestLedgerEvictsOldestLiveAtBound asserts the bound still holds on the
// true outstanding count: at maxOutstanding live entries, issuing one more
// evicts exactly the oldest live prediction.
func TestLedgerEvictsOldestLiveAtBound(t *testing.T) {
	svc := ledgerService(t)
	v := stochastic.New(1, 0.1)

	svc.ledgerMu.Lock()
	ids := make([]uint64, maxOutstanding)
	for i := range ids {
		ids[i] = svc.issueLocked(v, v, nil)
	}
	// Observe the three oldest: dead slots now sit at the front of the
	// order, ahead of the oldest live entry ids[3].
	for _, id := range ids[:3] {
		delete(svc.issued, id)
	}
	// Refill to exactly maxOutstanding live, then push one over the bound.
	for i := 0; i < 3; i++ {
		svc.issueLocked(v, v, nil)
	}
	over := svc.issueLocked(v, v, nil)
	_, fourthLive := svc.issued[ids[3]]
	_, fifthLive := svc.issued[ids[4]]
	_, overLive := svc.issued[over]
	outstanding := len(svc.issued)
	svc.ledgerMu.Unlock()

	if fourthLive {
		t.Error("oldest live prediction should have been evicted at the bound (dead slots skipped)")
	}
	if !fifthLive || !overLive {
		t.Error("younger live predictions must survive the eviction")
	}
	if outstanding != maxOutstanding {
		t.Errorf("outstanding = %d, want %d", outstanding, maxOutstanding)
	}
}

// TestLedgerOrderCompactionBound drives a sustained observed-heavy
// workload and asserts the order slice stays proportional to the live
// count — the backing-array retention fix.
func TestLedgerOrderCompactionBound(t *testing.T) {
	svc := ledgerService(t)
	v := stochastic.New(1, 0.1)
	svc.ledgerMu.Lock()
	for i := 0; i < 50000; i++ {
		id := svc.issueLocked(v, v, nil)
		if i%3 != 0 { // two of three round-trips observe immediately
			delete(svc.issued, id)
		}
	}
	orderLen, liveLen := len(svc.issuedOrder), len(svc.issued)
	svc.ledgerMu.Unlock()
	if orderLen > 2*liveLen+64 {
		t.Errorf("issuedOrder holds %d slots for %d live entries", orderLen, liveLen)
	}
}
