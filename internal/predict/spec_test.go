package predict_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"prodpred/internal/predict"
)

// TestSimulatedSpecMatchesSimulatedConfig asserts the declarative spec
// path is a bit-identical twin of the hand-built config path for both
// paper platforms — the property that lets predictd switch to specs (and
// snapshots embed them) without changing a single served value.
func TestSimulatedSpecMatchesSimulatedConfig(t *testing.T) {
	for _, platform := range []int{1, 2} {
		cfg, err := predict.SimulatedConfig(platform, 7)
		if err != nil {
			t.Fatal(err)
		}
		fromCfg, err := predict.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := predict.SimulatedSpec(platform, 7)
		if err != nil {
			t.Fatal(err)
		}
		spec.Warmup = 600
		fromSpec, err := predict.NewServiceFromSpec(&spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := fromCfg.AdvanceTo(600); err != nil {
			t.Fatal(err)
		}
		req := baseRequest()
		a, err := fromCfg.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromSpec.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("platform %d: spec-built prediction diverges from config-built:\n%+v\nvs\n%+v", platform, a, b)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	valid := func() predict.PlatformSpec {
		return predict.PlatformSpec{
			Name:     "t",
			Machines: []predict.MachineSpec{{Name: "m0", Kind: "sparc5"}, {Name: "m1", Kind: "sparc10"}},
			Seed:     3,
		}
	}
	cases := []struct {
		name   string
		mutate func(*predict.PlatformSpec)
	}{
		{"missing name", func(s *predict.PlatformSpec) { s.Name = "" }},
		{"no machines", func(s *predict.PlatformSpec) { s.Machines = nil }},
		{"bad machine kind", func(s *predict.PlatformSpec) { s.Machines[0].Kind = "vax" }},
		{"kindless machine without rates", func(s *predict.PlatformSpec) { s.Machines[0].Kind = "" }},
		{"bad load kind", func(s *predict.PlatformSpec) { s.CPU = []predict.LoadSpec{{Kind: "nope"}} }},
		{"cpu count mismatch", func(s *predict.PlatformSpec) {
			s.CPU = []predict.LoadSpec{{Kind: "light"}, {Kind: "light"}, {Kind: "light"}}
		}},
		{"single machine", func(s *predict.PlatformSpec) { s.Machines = s.Machines[:1] }},
		{"fault machine out of range", func(s *predict.PlatformSpec) {
			s.Faults = []predict.FaultSpec{{Machine: 5, Drop: 0.1}}
		}},
		{"negative warmup", func(s *predict.PlatformSpec) { s.Warmup = -1 }},
		{"bad link", func(s *predict.PlatformSpec) { s.Link = &predict.LinkSpec{DedBW: -1} }},
	}
	for _, tc := range cases {
		spec := valid()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
	}
	spec := valid()
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestSpecBroadcastAndDefaults covers the CPU conveniences: no loads means
// light load everywhere, one load broadcasts to every machine.
func TestSpecBroadcastAndDefaults(t *testing.T) {
	spec := predict.PlatformSpec{
		Name: "broadcast",
		Machines: []predict.MachineSpec{
			{Name: "a", Kind: "sparc5"},
			{Name: "b", Kind: "sparc5"},
			{Name: "c", Kind: "sparc10"},
		},
		CPU:  []predict.LoadSpec{{Kind: "platform2-bursty"}},
		Seed: 11,
	}
	svc, err := predict.NewServiceFromSpec(&spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Machines()); got != 3 {
		t.Fatalf("machines = %d, want 3", got)
	}
	empty := predict.PlatformSpec{
		Name:     "defaults",
		Machines: []predict.MachineSpec{{Name: "a", Kind: "ultra"}, {Name: "b", Kind: "ultra"}},
		Seed:     11,
	}
	if _, err := predict.NewServiceFromSpec(&empty, nil); err != nil {
		t.Fatalf("defaulted spec failed: %v", err)
	}
}

func TestParseSpecs(t *testing.T) {
	specsJSON := `[
	  {"name":"a","seed":1,"machines":[{"name":"m0","kind":"sparc5"},{"name":"m1","kind":"sparc10"}],
	   "cpu":[{"kind":"single-mode","mean":0.5,"sigma":0.05,"phi":0.8}],
	   "net":{"kind":"ethernet-contention"},
	   "faults":[{"machine":0,"drop":0.05,"outages":[{"start":10,"end":20}]}],
	   "calibration":{"window":32}},
	  {"name":"b","seed":2,"machines":[{"name":"m0","elem_rate":1e6,"memory_mb":64},{"name":"m1","elem_rate":2e6,"memory_mb":64}]}
	]`
	specs, err := predict.ParseSpecs(strings.NewReader(specsJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[1].Name != "b" {
		t.Fatalf("parsed %+v", specs)
	}
	if _, err := predict.ParseSpecs(strings.NewReader(`[{"name":"x","bogus_field":1}]`)); err == nil {
		t.Error("unknown field should be rejected")
	}
	if _, err := predict.ParseSpecs(strings.NewReader(`[{"name":"x","machines":[]}]`)); err == nil {
		t.Error("invalid spec should be rejected")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := predict.SimulatedSpec(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = []predict.FaultSpec{{Machine: 0, Drop: 0.1, Outages: []predict.OutageSpec{{Start: 5, End: 10}}}}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(spec); err != nil {
		t.Fatal(err)
	}
	var back predict.PlatformSpec
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", spec, back)
	}
}

func TestFleetSpecs(t *testing.T) {
	specs := predict.FleetSpecs(40, 5)
	if len(specs) != 40 {
		t.Fatalf("got %d specs", len(specs))
	}
	seen := make(map[string]bool)
	for i, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate tenant name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
	}
	// Same inputs, same fleet: generation must be deterministic.
	if !reflect.DeepEqual(specs, predict.FleetSpecs(40, 5)) {
		t.Fatal("FleetSpecs is not deterministic")
	}
}
