package predict

import (
	"fmt"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
)

// SimulatedConfig builds the Config for one of the paper's evaluation
// platforms under its calibrated production load: Platform 1 with the
// center-mode load on the Sparc-2s and light load elsewhere (§3.1), or
// Platform 2 with the 4-modal bursty load on every machine (§3.2). Both
// run long-tailed ethernet contention on the shared link. This is the
// platform builder cmd/sorpredict and cmd/predictd share.
func SimulatedConfig(platform int, seed int64) (Config, error) {
	var plat *cluster.Platform
	var cpu []load.Process
	switch platform {
	case 1:
		plat = cluster.Platform1()
		for i := 0; i < plat.Size(); i++ {
			var p load.Process
			var err error
			if i < 2 { // the Sparc-2s carry the center-mode load
				p, err = load.Platform1CenterMode(seed + int64(i))
			} else {
				p, err = load.LightLoad(seed + int64(i))
			}
			if err != nil {
				return Config{}, err
			}
			cpu = append(cpu, p)
		}
	case 2:
		plat = cluster.Platform2()
		for i := 0; i < plat.Size(); i++ {
			p, err := load.Platform2FourModeBursty(seed + int64(i)*17)
			if err != nil {
				return Config{}, err
			}
			cpu = append(cpu, p)
		}
	default:
		return Config{}, fmt.Errorf("predict: unknown platform %d (want 1 or 2)", platform)
	}
	net, err := load.EthernetContention(seed + 999)
	if err != nil {
		return Config{}, err
	}
	return Config{Platform: plat, CPU: cpu, Net: net}, nil
}
