package predict_test

import (
	"testing"
)

// TestObserveHeavyTrafficNeverEvictsLive is the end-to-end regression for
// the ledger eviction bug: under an observed-heavy workload (every
// prediction observed promptly), an old still-unobserved prediction must
// survive thousands of round-trips — eviction may only trigger once 4096
// predictions are *truly* outstanding, not once 4096 ledger slots (live or
// dead) have ever existed.
func TestObserveHeavyTrafficNeverEvictsLive(t *testing.T) {
	svc := burstyService(t, 3, 60, nil)
	req := baseRequest()
	first, err := svc.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	// More round-trips than the retention bound; all observed immediately,
	// so true outstanding never exceeds 2.
	for i := 0; i < 4200; i++ {
		p, err := svc.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Observe(p.ID, p.Value.Mean+1); err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
	}
	if got := svc.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1 (only the first prediction unobserved)", got)
	}
	if _, err := svc.Observe(first.ID, first.Value.Mean+1); err != nil {
		t.Fatalf("first prediction was evicted under observed-heavy traffic: %v", err)
	}
}
