package predict_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"prodpred/internal/predict"
)

// snapshotSpec is the platform the snapshot tests drive: the bursty paper
// platform with sensor faults on machine 0, so the snapshot carries
// non-trivial gap counters, staleness, and fault-injector wiring.
func snapshotSpec(t *testing.T) predict.PlatformSpec {
	t.Helper()
	spec, err := predict.SimulatedSpec(2, 101)
	if err != nil {
		t.Fatal(err)
	}
	spec.Warmup = 600
	spec.History = 256
	spec.FaultSeed = 99
	spec.Faults = []predict.FaultSpec{
		{Machine: 0, Drop: 0.08, Transient: 0.05, Outages: []predict.OutageSpec{{Start: 620, End: 680}}},
	}
	return spec
}

// driveState carries the drive loop's continuation: the not-yet-observed
// prediction IDs and the round counter, so a run can be split at an
// arbitrary point and resumed identically on a restored registry.
type driveState struct {
	pending []uint64
	round   int
}

func (d *driveState) fork() *driveState {
	return &driveState{pending: append([]uint64(nil), d.pending...), round: d.round}
}

// drive runs a deterministic serving sequence — advance, two prediction
// shapes, observe the two oldest pending IDs with actuals derived from
// the prediction stream itself — and returns everything it saw. Two
// registries in identical states driven with identical states produce
// identical outputs.
func drive(t *testing.T, reg *predict.Registry, name string, rounds int, st *driveState) []predict.Prediction {
	t.Helper()
	req1 := baseRequest()
	req1.Platform = name
	req2 := req1
	req2.N = 200
	req2.Iterations = 9
	var out []predict.Prediction
	for i := 0; i < rounds; i++ {
		st.round++
		svc, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Advance(5); err != nil {
			t.Fatal(err)
		}
		for _, req := range []predict.Request{req1, req2} {
			p, err := reg.Predict(req)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
			st.pending = append(st.pending, p.ID)
		}
		for k := 0; k < 2 && len(st.pending) > 0; k++ {
			id := st.pending[0]
			st.pending = st.pending[1:]
			actual := 10 + math.Mod(float64(id)*0.37+float64(st.round)*0.11, 5)
			if _, err := reg.Observe(name, id, actual); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// TestSnapshotRestoreBitIdentical is the tentpole acceptance: kill a fleet
// mid-run, restore it from its snapshot, and every subsequent prediction,
// ID, and calibration snapshot is bit-identical to a run that never
// stopped.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	regA := predict.NewRegistry()
	if err := regA.RegisterSpec(snapshotSpec(t)); err != nil {
		t.Fatal(err)
	}
	st := &driveState{}
	drive(t, regA, "platform2", 40, st)

	var snap bytes.Buffer
	if err := regA.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	regB, err := predict.ReadSnapshot(bytes.NewReader(snap.Bytes()), predict.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// A restored fleet re-snapshots to the same bytes: the image is a
	// fixed point of restore.
	var resnap bytes.Buffer
	if err := regB.WriteSnapshot(&resnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), resnap.Bytes()) {
		t.Fatal("restored registry re-snapshots to different bytes")
	}

	svcA, err := regA.Lookup("platform2")
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := regB.Lookup("platform2")
	if err != nil {
		t.Fatal(err)
	}
	if svcA.Now() != svcB.Now() {
		t.Fatalf("clocks diverge after restore: %g vs %g", svcA.Now(), svcB.Now())
	}
	if svcA.Outstanding() != svcB.Outstanding() {
		t.Fatalf("ledgers diverge after restore: %d vs %d outstanding", svcA.Outstanding(), svcB.Outstanding())
	}
	if !reflect.DeepEqual(svcA.Accuracy(), svcB.Accuracy()) {
		t.Fatal("calibration state diverges after restore")
	}

	// The uninterrupted original and the restored copy continue in
	// lockstep through another mixed predict/observe/advance phase.
	stB := st.fork()
	outA := drive(t, regA, "platform2", 40, st)
	outB := drive(t, regB, "platform2", 40, stB)
	if !reflect.DeepEqual(outA, outB) {
		for i := range outA {
			if !reflect.DeepEqual(outA[i], outB[i]) {
				t.Fatalf("prediction %d diverges after restore:\n%+v\nvs\n%+v", i, outA[i], outB[i])
			}
		}
		t.Fatal("post-restore predictions diverge")
	}
	if !reflect.DeepEqual(svcA.Accuracy(), svcB.Accuracy()) {
		t.Fatal("calibration state diverges after continued run")
	}
	if !reflect.DeepEqual(svcA.Reports(), svcB.Reports()) {
		t.Fatal("machine reports diverge after continued run")
	}
}

// TestSnapshotDeterministic asserts snapshotting is a pure read: two
// snapshots of the same state are byte-identical and do not perturb the
// serving state.
func TestSnapshotDeterministic(t *testing.T) {
	reg := predict.NewRegistry()
	if err := reg.RegisterSpec(snapshotSpec(t)); err != nil {
		t.Fatal(err)
	}
	drive(t, reg, "platform2", 10, &driveState{})
	var a, b bytes.Buffer
	if err := reg.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("back-to-back snapshots differ")
	}
}

// TestSnapshotColdSpecs asserts never-instantiated tenants ride through a
// snapshot as cold specs: present, still lazy, still cold on the other
// side.
func TestSnapshotColdSpecs(t *testing.T) {
	reg := predict.NewRegistry()
	for _, spec := range predict.FleetSpecs(20, 3) {
		if err := reg.RegisterSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Instantiate exactly one tenant.
	if _, err := reg.Lookup("tenant-0004"); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := reg.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	back, err := predict.ReadSnapshot(&snap, predict.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), reg.Names()) {
		t.Fatalf("names diverge: %v vs %v", back.Names(), reg.Names())
	}
	if got := back.LiveCount(); got != 1 {
		t.Fatalf("restored LiveCount = %d, want 1 (cold specs must stay cold)", got)
	}
}

// TestSnapshotRejectsSpeclessService: a service assembled directly from a
// Config carries no spec, so the restore path could not rebuild it —
// snapshotting must fail loudly, not silently drop the platform.
func TestSnapshotRejectsSpeclessService(t *testing.T) {
	reg := predict.NewRegistry()
	svc := burstyService(t, 3, 50, nil)
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := reg.WriteSnapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "not built from a spec") {
		t.Fatalf("want spec-less snapshot error, got %v", err)
	}
}

func TestReadSnapshotRejectsCorrupt(t *testing.T) {
	reg := predict.NewRegistry()
	if err := reg.RegisterSpec(predict.FleetSpecs(1, 2)[0]); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := reg.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	full := snap.Bytes()
	if _, err := predict.ReadSnapshot(bytes.NewReader([]byte("NOTASNAP")), predict.RegistryOptions{}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := predict.ReadSnapshot(bytes.NewReader(full[:len(full)-3]), predict.RegistryOptions{}); err == nil {
		t.Error("truncated snapshot accepted")
	}
	mangled := append([]byte(nil), full...)
	mangled[6] = 0xFF // version field
	if _, err := predict.ReadSnapshot(bytes.NewReader(mangled), predict.RegistryOptions{}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := predict.ReadSnapshot(bytes.NewReader(append(append([]byte(nil), full...), 0xAA)), predict.RegistryOptions{}); err == nil {
		t.Error("trailing bytes accepted")
	}
}
