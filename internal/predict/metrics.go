package predict

import (
	"time"

	"prodpred/internal/nws"
	"prodpred/internal/obs"
)

// Pipeline metric family names, as exposed on GET /metrics. Every family is
// labeled by platform; the stage histogram additionally by stage. The full
// catalog lives in OPERATIONS.md, and internal/readmecheck fails the build
// if a registered name is missing from it.
const (
	MetricPredictions      = "predict_predictions_total"
	MetricPredictionErrors = "predict_prediction_errors_total"
	MetricObservations     = "predict_observations_total"
	MetricDriftEvents      = "predict_drift_events_total"
	MetricFaultGapSamples  = "predict_fault_gap_samples_total"
	MetricCalibrationScale = "predict_calibration_scale"
	MetricOutstanding      = "predict_outstanding_predictions"
	MetricVirtualTime      = "predict_virtual_time_seconds"
	MetricStageDuration    = "predict_stage_duration_seconds"
	MetricCacheHits        = "predict_cache_hits_total"
	MetricCacheMisses      = "predict_cache_misses_total"
	MetricBatchSize        = "predict_batch_size"
	MetricTournamentWins   = "forecaster_tournament_wins_total"
	MetricQuantileRequests = "predict_quantile_requests_total"
	MetricScenarioInfo     = "workload_scenario_info"
)

// BatchSizeBuckets are the upper bounds of the predict_batch_size
// histogram: powers of two spanning a single request to the largest batch
// the API accepts.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Stage label values of MetricStageDuration, in pipeline order: catch the
// monitors up (monitor_read), read their robust stochastic reports
// (forecast), choose the partition (schedule), evaluate the structural
// model (model_eval), and the whole Predict call end to end (predict).
var Stages = []string{"monitor_read", "forecast", "schedule", "model_eval", "dist_grid", "predict"}

// serviceMetrics holds one platform's pre-resolved metric series. A nil
// *serviceMetrics (no registry configured) makes every record call a cheap
// no-op, so the pipeline is identical with telemetry off.
type serviceMetrics struct {
	predictions  *obs.Counter
	errors       *obs.Counter
	observations *obs.Counter
	drifts       *obs.Counter
	gapSamples   *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	batchSize    *obs.Histogram
	quantileReqs *obs.Counter
	scale        *obs.Gauge
	outstanding  *obs.Gauge
	vtime        *obs.Gauge
	stages       map[string]*obs.Histogram

	// Tournament-win counters, pre-resolved per known forecaster tag.
	// winsVec stays behind for tags outside the standard set; the map is
	// read-only after construction, so concurrent record calls never race.
	platform string
	winsVec  *obs.CounterVec
	wins     map[string]*obs.Counter

	// scenarioVec carries one constant-1 series per workload scenario the
	// platform's spec references — an info metric for fleet dashboards.
	scenarioVec *obs.GaugeVec
}

// newServiceMetrics registers (or finds) the pipeline families on reg and
// resolves this platform's series, eagerly, so every documented family and
// stage series exists from the first scrape.
func newServiceMetrics(reg *obs.Registry, platform string) *serviceMetrics {
	if reg == nil {
		return nil
	}
	m := &serviceMetrics{
		predictions: reg.NewCounterVec(MetricPredictions,
			"Predictions issued, by platform.", "platform").With(platform),
		errors: reg.NewCounterVec(MetricPredictionErrors,
			"Predict calls rejected with an error, by platform.", "platform").With(platform),
		observations: reg.NewCounterVec(MetricObservations,
			"Measured runtimes fed back via Observe, by platform.", "platform").With(platform),
		drifts: reg.NewCounterVec(MetricDriftEvents,
			"Load-regime drift events detected by the calibrator, by platform.", "platform").With(platform),
		gapSamples: reg.NewCounterVec(MetricFaultGapSamples,
			"Sensor samples lost to faults (drops, outages, exhausted transients), by platform.", "platform").With(platform),
		cacheHits: reg.NewCounterVec(MetricCacheHits,
			"Predictions served from the tick-scoped forecast cache, by platform.", "platform").With(platform),
		cacheMisses: reg.NewCounterVec(MetricCacheMisses,
			"Predictions that ran the full pipeline (first touch per tick, or uncacheable request), by platform.", "platform").With(platform),
		batchSize: reg.NewHistogramVec(MetricBatchSize,
			"Requests per POST /predict/batch call, by platform.",
			BatchSizeBuckets, "platform").With(platform),
		quantileReqs: reg.NewCounterVec(MetricQuantileRequests,
			"Predictions that requested calibrated quantile intervals, by platform.", "platform").With(platform),
		scale: reg.NewGaugeVec(MetricCalibrationScale,
			"Current conformal half-width multiplier, by platform (1 = uncalibrated).", "platform").With(platform),
		outstanding: reg.NewGaugeVec(MetricOutstanding,
			"Issued predictions awaiting an Observe call, by platform.", "platform").With(platform),
		vtime: reg.NewGaugeVec(MetricVirtualTime,
			"Current virtual-clock time in virtual seconds, by platform.", "platform").With(platform),
		stages: make(map[string]*obs.Histogram, len(Stages)),
	}
	hv := reg.NewHistogramVec(MetricStageDuration,
		"Wall-clock pipeline stage latency in seconds, by platform and stage.",
		nil, "platform", "stage")
	for _, stage := range Stages {
		m.stages[stage] = hv.With(platform, stage)
	}
	m.platform = platform
	m.winsVec = reg.NewCounterVec(MetricTournamentWins,
		"Machine-load distributions served per winning forecaster, by platform and forecaster.",
		"platform", "forecaster")
	m.wins = make(map[string]*obs.Counter)
	tags := append(nws.DistForecasterNames(),
		nws.FallbackForecasterName, nws.PriorForecasterName, OverrideForecasterName)
	for _, tag := range tags {
		m.wins[tag] = m.winsVec.With(platform, tag)
	}
	m.scenarioVec = reg.NewGaugeVec(MetricScenarioInfo,
		"Workload-library scenarios driving this platform's load (value always 1), by platform and scenario.",
		"platform", "scenario")
	m.scale.Set(1)
	return m
}

// recordScenario publishes one workload-scenario info series for this
// platform.
func (m *serviceMetrics) recordScenario(name string) {
	if m == nil || name == "" {
		return
	}
	m.scenarioVec.With(m.platform, name).Set(1)
}

// recordTournamentWin counts one machine-load distribution served by the
// named forecaster. Unknown tags fall through to the vec's own lock.
func (m *serviceMetrics) recordTournamentWin(name string) {
	if m == nil {
		return
	}
	if c, ok := m.wins[name]; ok {
		c.Inc()
		return
	}
	m.winsVec.With(m.platform, name).Inc()
}

// recordQuantileRequest counts one prediction that asked for calibrated
// quantile intervals.
func (m *serviceMetrics) recordQuantileRequest() {
	if m != nil {
		m.quantileReqs.Inc()
	}
}

// stageTimer returns a stop function recording the wall-clock duration of
// one pipeline stage. On a nil receiver it avoids even the clock read.
func (m *serviceMetrics) stageTimer(stage string) func() {
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() { m.stages[stage].Observe(time.Since(start).Seconds()) }
}

func (m *serviceMetrics) recordError() {
	if m != nil {
		m.errors.Inc()
	}
}

func (m *serviceMetrics) recordCacheHit() {
	if m != nil {
		m.cacheHits.Inc()
	}
}

func (m *serviceMetrics) recordCacheMiss() {
	if m != nil {
		m.cacheMisses.Inc()
	}
}

// recordBatch records one PredictBatch call's size.
func (m *serviceMetrics) recordBatch(n int) {
	if m != nil {
		m.batchSize.Observe(float64(n))
	}
}

// recordPredict updates the per-prediction counters and gauges after a
// successful Predict call.
func (m *serviceMetrics) recordPredict(scale float64, outstanding int) {
	if m == nil {
		return
	}
	m.predictions.Inc()
	m.scale.Set(scale)
	m.outstanding.Set(float64(outstanding))
}

// recordObserve updates the feedback-path counters after an Observe call.
func (m *serviceMetrics) recordObserve(scale float64, outstanding int, drifted bool) {
	if m == nil {
		return
	}
	m.observations.Inc()
	if drifted {
		m.drifts.Inc()
	}
	m.scale.Set(scale)
	m.outstanding.Set(float64(outstanding))
}

// recordClock publishes the virtual clock and the cumulative fault-gap
// delta (missed sensor samples since the last sync).
func (m *serviceMetrics) recordClock(vtime float64, missedDelta int) {
	if m == nil {
		return
	}
	m.vtime.Set(vtime)
	m.gapSamples.Add(int64(missedDelta))
}
