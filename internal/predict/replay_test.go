package predict_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"prodpred/internal/predict"
	"prodpred/internal/stochastic"
	"prodpred/internal/workload"
)

// scenarioMachines is the platform shape the record/replay tests run on.
func scenarioMachines() []predict.MachineSpec {
	return []predict.MachineSpec{
		{Name: "m0", Kind: "sparc5"},
		{Name: "m1", Kind: "sparc10"},
		{Name: "m2", Kind: "ultra"},
		{Name: "m3", Kind: "ultra"},
	}
}

// driveReplay advances the service through a fixed schedule, issuing one
// distribution-valued prediction per tick and returning each prediction's
// JSON encoding — the byte-level artifact the replay must reproduce.
func driveReplay(t *testing.T, svc *predict.Service, steps int) [][]byte {
	t.Helper()
	req := predict.Request{
		N:           96,
		Iterations:  4,
		MaxStrategy: stochastic.LargestMean,
		Levels:      []float64{0.5, 0.95},
	}
	out := make([][]byte, 0, steps)
	for i := 0; i < steps; i++ {
		if err := svc.Advance(20); err != nil {
			t.Fatal(err)
		}
		p, err := svc.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestScenarioRecordReplayBitIdentical is the record→replay acceptance
// test: predictions served while a scenario generates the load, recorded
// to trace files and replayed via LoadSpec{Kind:"trace"}, must come back
// byte-identical — the CI smoke runs exactly this test.
func TestScenarioRecordReplayBitIdentical(t *testing.T) {
	const scenario = "heavy-tail-batch"
	spec := predict.PlatformSpec{
		Name:     "scenario-rec",
		Machines: scenarioMachines(),
		CPU:      []predict.LoadSpec{{Kind: "scenario", Scenario: scenario}},
		Seed:     11,
		Warmup:   300,
	}
	svc, err := predict.NewServiceFromSpec(&spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := driveReplay(t, svc, 12)
	end := svc.Now()

	// Record each machine's load process over the full horizon the run
	// touched, into the versioned trace format.
	sc, _ := workload.Lookup(scenario)
	dir := t.TempDir()
	cpu := make([]predict.LoadSpec, len(spec.Machines))
	for i := range spec.Machines {
		h, vals, err := workload.CaptureTrace(svc.Env().CPULoad(i), scenario, sc.Hash(), spec.Seed, i, 0, end)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("cpu%d.trace", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.WriteTrace(f, h, vals); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		cpu[i] = predict.LoadSpec{Kind: "trace", Path: path}
	}

	replay := spec
	replay.CPU = cpu
	svc2, err := predict.NewServiceFromSpec(&replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := driveReplay(t, svc2, 12)

	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("prediction %d diverged under replay:\n  live:   %s\n  replay: %s", i, want[i], got[i])
		}
	}
}

// TestScenarioSpecValidation covers the new LoadSpec kinds' error paths.
func TestScenarioSpecValidation(t *testing.T) {
	base := func() predict.PlatformSpec {
		return predict.PlatformSpec{
			Name:     "t",
			Machines: scenarioMachines(),
			Seed:     3,
		}
	}
	t.Run("valid scenario kinds", func(t *testing.T) {
		for _, name := range workload.Names() {
			spec := base()
			spec.CPU = []predict.LoadSpec{{Kind: "scenario", Scenario: name}}
			if err := spec.Validate(); err != nil {
				t.Errorf("scenario %q rejected: %v", name, err)
			}
		}
	})
	t.Run("scenario net kind", func(t *testing.T) {
		spec := base()
		spec.Net = &predict.LoadSpec{Kind: "scenario", Scenario: "diurnal-web"}
		if err := spec.Validate(); err != nil {
			t.Fatalf("scenario net rejected: %v", err)
		}
		// quiet-baseline ships no net component: using it as a net spec
		// must fail rather than silently running contention-free.
		spec.Net = &predict.LoadSpec{Kind: "scenario", Scenario: "quiet-baseline"}
		if err := spec.Validate(); err == nil {
			t.Fatal("netless scenario accepted as a net spec")
		}
	})
	t.Run("rejections", func(t *testing.T) {
		cases := []predict.LoadSpec{
			{Kind: "scenario"}, // missing name
			{Kind: "scenario", Scenario: "no-such-scenario"}, // unknown
			{Kind: "scenario", Scenario: "diurnal-web", Machine: -1},
			{Kind: "trace"}, // missing path
			{Kind: "trace", Path: "/does/not/exist"},
		}
		for _, ls := range cases {
			spec := base()
			spec.CPU = []predict.LoadSpec{ls}
			if err := spec.Validate(); err == nil {
				t.Errorf("load spec %+v accepted", ls)
			}
		}
	})
	t.Run("trace kind round trip", func(t *testing.T) {
		sc, _ := workload.Lookup("quiet-baseline")
		p, err := sc.Machine(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		h, vals, err := workload.CaptureTrace(p, sc.Name, sc.Hash(), 5, 0, 0, 900)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "m0.trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.WriteTrace(f, h, vals); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		spec := base()
		spec.CPU = []predict.LoadSpec{{Kind: "trace", Path: path}}
		if err := spec.Validate(); err != nil {
			t.Fatalf("trace spec rejected: %v", err)
		}
	})
}

// TestScenarioBroadcastSpreadsEntries asserts a single broadcast scenario
// spec drives each machine with its own component entry (distinct
// processes), not four copies of entry 0.
func TestScenarioBroadcastSpreadsEntries(t *testing.T) {
	spec := predict.PlatformSpec{
		Name:     "spread",
		Machines: scenarioMachines(),
		CPU:      []predict.LoadSpec{{Kind: "scenario", Scenario: "flash-crowd"}},
		Seed:     21,
	}
	svc, err := predict.NewServiceFromSpec(&spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// flash-crowd's four entries have different onsets (240/420/600/330):
	// at t=300 only machine 0's crowd has landed.
	env := svc.Env()
	v0, v1 := env.RawCPUAvail(0, 300), env.RawCPUAvail(1, 300)
	if v0 >= 0.4 {
		t.Fatalf("machine 0 should be under crowd load at t=300, got availability %g", v0)
	}
	if v1 < 0.4 {
		t.Fatalf("machine 1's crowd starts at t=420; availability %g at t=300 looks loaded", v1)
	}
}
