package predict_test

import (
	"strings"
	"testing"

	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
	"prodpred/internal/stochastic"
)

// burstyService builds a Platform 2 service under bursty production load,
// optionally fault-injected, advanced to warmup.
func burstyService(t *testing.T, seed int64, warmup float64, in *faults.Injector) *predict.Service {
	t.Helper()
	cfg, err := predict.SimulatedConfig(2, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Injector = in
	cfg.History = 256
	svc, err := predict.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(warmup); err != nil {
		t.Fatal(err)
	}
	return svc
}

func baseRequest() predict.Request {
	return predict.Request{N: 120, Iterations: 6, MaxStrategy: stochastic.LargestMean}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := predict.NewService(predict.Config{}); err == nil {
		t.Error("nil platform should fail")
	}
	plat := cluster.Platform2()
	if _, err := predict.NewService(predict.Config{
		Platform: plat,
		CPU:      []load.Process{load.Dedicated()}, // wrong count
		Net:      load.Dedicated(),
	}); err == nil {
		t.Error("cpu count mismatch should fail")
	}
}

func TestPredictBasics(t *testing.T) {
	svc := burstyService(t, 3, 300, nil)
	pred, err := svc.Predict(baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Value.Mean <= 0 {
		t.Errorf("prediction mean=%g", pred.Value.Mean)
	}
	if pred.Value.IsPoint() {
		t.Error("production prediction should carry spread")
	}
	if pred.Time != 300 {
		t.Errorf("prediction time=%g, want 300", pred.Time)
	}
	if got := pred.Partition.P(); got != svc.Platform().Size() {
		t.Errorf("partition strips=%d", got)
	}
	if len(pred.Loads) != svc.Platform().Size() {
		t.Fatalf("loads=%d", len(pred.Loads))
	}
	for i, l := range pred.Loads {
		if l.Machine != i {
			t.Errorf("load %d machine=%d", i, l.Machine)
		}
		if l.Load.Mean <= 0 || l.Load.Mean > 1.5 {
			t.Errorf("machine %d load=%v", i, l.Load)
		}
		if l.Raw <= 0 || l.Raw > 1 {
			t.Errorf("machine %d raw=%g", i, l.Raw)
		}
		if l.Gaps.Recorded() == 0 {
			t.Errorf("machine %d recorded no samples", i)
		}
	}
	// Ethernet contention is a production network: bandwidth must have
	// been monitored, not assumed dedicated.
	if pred.Bandwidth == stochastic.Point(1) {
		t.Error("bandwidth should be monitored under contention")
	}
	if pred.Degraded() {
		t.Error("fault-free service should not be degraded")
	}
}

func TestRequestValidation(t *testing.T) {
	svc := burstyService(t, 3, 100, nil)
	req := baseRequest()
	req.N = 2
	if _, err := svc.Predict(req); err == nil {
		t.Error("tiny grid should fail")
	}
	req = baseRequest()
	req.Iterations = 0
	if _, err := svc.Predict(req); err == nil {
		t.Error("zero iterations should fail")
	}
	req = baseRequest()
	req.Platform = "not-this-platform"
	if _, err := svc.Predict(req); err == nil {
		t.Error("mismatched platform name should fail")
	}
	req.Platform = svc.Name()
	if _, err := svc.Predict(req); err != nil {
		t.Errorf("matching platform name: %v", err)
	}
	if err := svc.Advance(-1); err == nil {
		t.Error("negative advance should fail")
	}
	if err := svc.AdvanceTo(50); err == nil {
		t.Error("backwards AdvanceTo should fail")
	}
}

func TestPartitionPinning(t *testing.T) {
	svc := burstyService(t, 5, 300, nil)
	req := baseRequest()
	part, err := svc.Partition(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Partition = part
	pred, err := svc.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Partition != part {
		t.Error("pinned partition not carried through")
	}
	// A time-balanced request yields a valid alternative decomposition.
	tb := baseRequest()
	tb.TimeBalanced = true
	tbPart, err := svc.Partition(tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbPart.Validate(); err != nil {
		t.Errorf("time-balanced partition invalid: %v", err)
	}
}

func TestPriorFallbackUnderTotalOutage(t *testing.T) {
	// Every sensor dark from t=0: the fallback chain must bottom out at
	// the conservative prior instead of erroring.
	in := faults.NewInjector(1)
	for m := 0; m < cluster.Platform2().Size(); m++ {
		if err := in.Set(m, faults.Schedule{Outages: []faults.Window{{Start: 0, End: 1e9}}}); err != nil {
			t.Fatal(err)
		}
	}
	svc := burstyService(t, 3, 200, in)
	pred, err := svc.Predict(baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range pred.Loads {
		if l.Load != predict.DefaultCPUPrior {
			t.Errorf("machine %d load=%v, want prior %v", i, l.Load, predict.DefaultCPUPrior)
		}
		if l.Gaps.Outage == 0 {
			t.Errorf("machine %d recorded no outage misses", i)
		}
		if l.Staleness == 0 {
			t.Errorf("machine %d staleness=0 under permanent outage", i)
		}
	}
	if !pred.Degraded() {
		t.Error("permanent outage should mark the prediction degraded")
	}
}

func TestLoadOverride(t *testing.T) {
	svc := burstyService(t, 7, 200, nil)
	req := baseRequest()
	called := 0
	req.LoadOverride = func(machine int, mon *nws.Monitor) (stochastic.Value, error) {
		called++
		if mon.Len() == 0 {
			t.Errorf("machine %d monitor empty in override", machine)
		}
		return stochastic.New(0.5, 0.2), nil
	}
	pred, err := svc.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if called != svc.Platform().Size() {
		t.Errorf("override called %d times", called)
	}
	for i, l := range pred.Loads {
		if l.Load != stochastic.New(0.5, 0.2) {
			t.Errorf("machine %d load=%v, want override", i, l.Load)
		}
	}
}

func TestDedicatedNetworkSkipsBandwidth(t *testing.T) {
	plat := cluster.Platform2()
	cpu := make([]load.Process, plat.Size())
	for i := range cpu {
		p, err := load.Platform2FourModeBursty(int64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		cpu[i] = p
	}
	svc, err := predict.NewService(predict.Config{Platform: plat, CPU: cpu, Net: load.Dedicated()})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	pred, err := svc.Predict(baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Bandwidth != stochastic.Point(1) {
		t.Errorf("constant network bandwidth=%v, want Point(1)", pred.Bandwidth)
	}
	if pred.BWGaps != (predict.Prediction{}).BWGaps {
		t.Errorf("constant network BWGaps=%+v, want zero", pred.BWGaps)
	}
	if svc.BWGaps() != (predict.Prediction{}).BWGaps {
		t.Errorf("service BWGaps=%+v, want zero", svc.BWGaps())
	}
}

func TestReportsAndGaps(t *testing.T) {
	in := faults.NewInjector(9)
	if err := in.Set(0, faults.Schedule{DropProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	svc := burstyService(t, 11, 400, in)
	reports := svc.Reports()
	if len(reports) != svc.Platform().Size() {
		t.Fatalf("reports=%d", len(reports))
	}
	if reports[0].Gaps.Dropped == 0 {
		t.Error("machine 0 should have dropped samples")
	}
	gaps := svc.CPUGaps()
	if len(gaps) != len(reports) {
		t.Fatalf("gaps=%d", len(gaps))
	}
	if gaps[0].Dropped != reports[0].Gaps.Dropped {
		t.Errorf("gap views disagree: %d vs %d", gaps[0].Dropped, reports[0].Gaps.Dropped)
	}
	if gaps[1].Dropped != 0 {
		t.Errorf("machine 1 has no schedule but dropped %d", gaps[1].Dropped)
	}
}

func TestRegistry(t *testing.T) {
	reg := predict.NewRegistry()
	if _, err := reg.Lookup(""); err == nil {
		t.Error("empty registry lookup should fail")
	}
	svc2 := burstyService(t, 3, 100, nil)
	if err := reg.Register(svc2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(svc2); err == nil {
		t.Error("duplicate register should fail")
	}
	// With a single service, the empty name resolves to it.
	if s, err := reg.Lookup(""); err != nil || s != svc2 {
		t.Errorf("single-service empty lookup: %v, %v", s, err)
	}
	cfg1, err := predict.SimulatedConfig(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := predict.NewService(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc1.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(svc1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup(""); err == nil {
		t.Error("ambiguous empty lookup should fail")
	}
	names := reg.Names()
	if len(names) != 2 || names[0] > names[1] {
		t.Errorf("names=%v", names)
	}
	req := baseRequest()
	req.Platform = svc1.Name()
	pred, err := reg.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Loads) != svc1.Platform().Size() {
		t.Errorf("routed to wrong platform: %d machines", len(pred.Loads))
	}
	if _, err := reg.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("unknown lookup err=%v", err)
	}
	if got := len(reg.Services()); got != 2 {
		t.Errorf("services=%d", got)
	}
}

func TestSimulatedConfig(t *testing.T) {
	if _, err := predict.SimulatedConfig(3, 1); err == nil {
		t.Error("unknown platform should fail")
	}
	for _, id := range []int{1, 2} {
		cfg, err := predict.SimulatedConfig(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.CPU) != cfg.Platform.Size() {
			t.Errorf("platform %d: %d load processes for %d machines",
				id, len(cfg.CPU), cfg.Platform.Size())
		}
		if _, constant := cfg.Net.(load.Constant); constant {
			t.Errorf("platform %d: network should carry contention", id)
		}
	}
}

func TestObserveLifecycle(t *testing.T) {
	svc := burstyService(t, 13, 300, nil)
	pred, err := svc.Predict(baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if pred.ID == 0 {
		t.Fatal("prediction carries no ID")
	}
	if pred.CalibrationScale != 1 || pred.Value != pred.Raw {
		t.Errorf("unobserved service should return uncalibrated intervals: scale=%g value=%v raw=%v",
			pred.CalibrationScale, pred.Value, pred.Raw)
	}
	if svc.Outstanding() != 1 {
		t.Errorf("outstanding=%d", svc.Outstanding())
	}
	snap, err := svc.Observe(pred.ID, pred.Value.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Observed != 1 || snap.CumRawCapture != 1 {
		t.Errorf("snapshot after one captured outcome: %+v", snap)
	}
	if svc.Outstanding() != 0 {
		t.Errorf("outstanding=%d after observe", svc.Outstanding())
	}
	if got := svc.Accuracy(); got.Observed != 1 {
		t.Errorf("accuracy observed=%d", got.Observed)
	}
	// Observing the same ID twice, an ID never issued, or a nonsense
	// runtime must all fail loudly.
	if _, err := svc.Observe(pred.ID, 1); err == nil {
		t.Error("double observe should fail")
	}
	if _, err := svc.Observe(99999, 1); err == nil {
		t.Error("never-issued prediction ID should fail")
	}
	if _, err := svc.Observe(pred.ID+1000, 1); err == nil {
		t.Error("unknown prediction ID should fail")
	}
	pred2, err := svc.Predict(baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Observe(pred2.ID, -3); err == nil {
		t.Error("non-positive actual should fail")
	}
	if _, err := svc.Observe(pred2.ID, 0); err == nil {
		t.Error("zero actual should fail")
	}
	// The rejected actuals must not have consumed the ID.
	if _, err := svc.Observe(pred2.ID, pred2.Value.Mean); err != nil {
		t.Errorf("valid observe after rejected actuals: %v", err)
	}
}

// TestObserveCalibratesIntervals: consistently over-wide raw intervals
// tighten once enough outcomes accumulate, and the floor stops the
// tightening from collapsing the interval to a point.
func TestObserveCalibratesIntervals(t *testing.T) {
	svc := burstyService(t, 17, 300, nil)
	req := baseRequest()
	for i := 0; i < 24; i++ {
		pred, err := svc.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		// Actual lands dead on the predicted mean: the model is "perfect",
		// so the claimed ±2σ interval is far too wide.
		if _, err := svc.Observe(pred.ID, pred.Raw.Mean); err != nil {
			t.Fatal(err)
		}
		if err := svc.Advance(5); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := svc.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if pred.CalibrationScale >= 1 {
		t.Errorf("scale=%g, want < 1 after 24 dead-center outcomes", pred.CalibrationScale)
	}
	if pred.CalibrationScale < calib.DefaultScaleFloor {
		t.Errorf("scale=%g below floor", pred.CalibrationScale)
	}
	if pred.Value.Spread >= pred.Raw.Spread || pred.Value.Spread == 0 {
		t.Errorf("calibrated spread %g vs raw %g", pred.Value.Spread, pred.Raw.Spread)
	}
	if pred.Value.Mean != pred.Raw.Mean {
		t.Error("calibration must not move the mean")
	}
	if pred.Calibration.Scale != pred.CalibrationScale {
		t.Errorf("diagnostics scale %g != applied scale %g",
			pred.Calibration.Scale, pred.CalibrationScale)
	}
}

func TestRegistryObserve(t *testing.T) {
	reg := predict.NewRegistry()
	svc := burstyService(t, 19, 200, nil)
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Observe("atlantis", 1, 1); err == nil {
		t.Error("unknown platform should fail")
	}
	pred, err := reg.Predict(predict.Request{Platform: svc.Name(), N: 120, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := reg.Observe(svc.Name(), pred.ID, pred.Value.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Observed != 1 {
		t.Errorf("routed observe recorded %d outcomes", snap.Observed)
	}
	if _, err := reg.Observe(svc.Name(), pred.ID+7, 1); err == nil {
		t.Error("never-issued ID should fail through the registry too")
	}
}

// TestObserveEviction: the issued-prediction ledger stays bounded when a
// caller predicts forever without observing.
func TestObserveEviction(t *testing.T) {
	svc := burstyService(t, 23, 200, nil)
	req := baseRequest()
	var first uint64
	for i := 0; i < 4100; i++ {
		pred, err := svc.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = pred.ID
		}
	}
	if got := svc.Outstanding(); got != 4096 {
		t.Errorf("outstanding=%d, want the 4096 retention bound", got)
	}
	if _, err := svc.Observe(first, 1); err == nil {
		t.Error("evicted prediction should no longer be observable")
	}
}
