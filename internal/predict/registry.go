package predict

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"prodpred/internal/calib"
	"prodpred/internal/obs"
)

// DefaultRegistryShards is how many independently locked shards platform
// names are consistent-hashed across when RegistryOptions.Shards is zero.
const DefaultRegistryShards = 32

// ringVNodes is the number of virtual nodes each shard contributes to the
// hash ring; more vnodes spread tenants more evenly across shards.
const ringVNodes = 64

// RegistryOptions tunes a fleet registry.
type RegistryOptions struct {
	// Shards is the number of lock shards (DefaultRegistryShards when 0).
	Shards int
	// Metrics, when non-nil, instruments every lazily instantiated service
	// (eagerly Register()ed services carry whatever their Config chose).
	Metrics *obs.Registry
}

// Registry routes requests to the Service owning the named platform — the
// multi-tenant front a serving daemon puts before its fleet. Platform
// names are consistent-hashed across independently locked shards, so
// Lookup and PredictBatch on thousands of tenants never contend on one
// registry-wide mutex. Platforms register either as live services
// (Register) or as declarative specs (RegisterSpec) that instantiate
// lazily — build, warm up, publish — on the first request that names
// them. Safe for concurrent use.
type Registry struct {
	shards  []registryShard
	ring    []ringPoint
	metrics *obs.Registry

	// countMu guards the registration count and the sole-platform name the
	// empty-name Lookup convenience resolves through.
	countMu  sync.Mutex
	count    int
	soleName string
}

// registryShard is one lock domain of the registry: the subset of
// platforms whose names hash to it. services is the live fast path
// (published under the write lock once a service exists); entries holds
// every registration, cold or live.
type registryShard struct {
	mu       sync.RWMutex
	services map[string]*Service
	entries  map[string]*platformEntry
}

// platformEntry is one registered platform. A spec entry starts cold and
// memoizes its build (service or error) under its own mutex, so
// concurrent first requests for a cold tenant build it exactly once and a
// slow build never blocks requests for other tenants on the same shard.
type platformEntry struct {
	spec *PlatformSpec // nil for directly registered services

	mu    sync.Mutex
	built bool
	svc   *Service
	err   error
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard uint32
}

// NewRegistry returns an empty registry with default options.
func NewRegistry() *Registry {
	return NewRegistryWith(RegistryOptions{})
}

// NewRegistryWith returns an empty registry with the given shard count and
// instrumentation.
func NewRegistryWith(opts RegistryOptions) *Registry {
	n := opts.Shards
	if n <= 0 {
		n = DefaultRegistryShards
	}
	r := &Registry{
		shards:  make([]registryShard, n),
		ring:    buildRing(n),
		metrics: opts.Metrics,
	}
	for i := range r.shards {
		r.shards[i].services = make(map[string]*Service)
		r.shards[i].entries = make(map[string]*platformEntry)
	}
	return r
}

// buildRing hashes ringVNodes virtual nodes per shard onto a sorted ring.
func buildRing(shards int) []ringPoint {
	ring := make([]ringPoint, 0, shards*ringVNodes)
	var key [16]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVNodes; v++ {
			n := copy(key[:], "shard")
			key[n] = byte(s)
			key[n+1] = byte(s >> 8)
			key[n+2] = byte(v)
			key[n+3] = byte(v >> 8)
			ring = append(ring, ringPoint{hash: fnv64a(string(key[:n+4])), shard: uint32(s)})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// fnv64a is an inline FNV-1a so the per-request hash allocates nothing.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// shardFor maps a platform name to its shard: the first ring point at or
// clockwise after the name's hash.
func (r *Registry) shardFor(name string) *registryShard {
	h := fnv64a(name)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return &r.shards[r.ring[i].shard]
}

// registered records a new registration for the empty-name resolution
// bookkeeping.
func (r *Registry) registered(name string) {
	r.countMu.Lock()
	r.count++
	if r.count == 1 {
		r.soleName = name
	} else {
		r.soleName = ""
	}
	r.countMu.Unlock()
}

// Register adds a live service under its platform name.
func (r *Registry) Register(s *Service) error {
	if s == nil {
		return errors.New("predict: nil service")
	}
	if s.Name() == "" {
		return errors.New("predict: service platform has no name")
	}
	sh := r.shardFor(s.Name())
	sh.mu.Lock()
	if _, ok := sh.entries[s.Name()]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("predict: platform %q already registered", s.Name())
	}
	sh.entries[s.Name()] = &platformEntry{spec: s.Spec(), built: true, svc: s}
	sh.services[s.Name()] = s
	sh.mu.Unlock()
	r.registered(s.Name())
	return nil
}

// RegisterSpec adds a cold declarative platform: the spec is validated and
// deep-copied now, and the Service is built — config, constructor, warmup
// — on the first request that names it.
func (r *Registry) RegisterSpec(spec PlatformSpec) error {
	if spec.Name == "" {
		return errors.New("predict: spec missing platform name")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	sh := r.shardFor(spec.Name)
	sh.mu.Lock()
	if _, ok := sh.entries[spec.Name]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("predict: platform %q already registered", spec.Name)
	}
	sh.entries[spec.Name] = &platformEntry{spec: spec.clone()}
	sh.mu.Unlock()
	r.registered(spec.Name)
	return nil
}

// registerRestored installs a spec together with its already-live restored
// service — the snapshot restore path.
func (r *Registry) registerRestored(spec *PlatformSpec, s *Service) error {
	sh := r.shardFor(spec.Name)
	sh.mu.Lock()
	if _, ok := sh.entries[spec.Name]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("predict: platform %q already registered", spec.Name)
	}
	sh.entries[spec.Name] = &platformEntry{spec: spec, built: true, svc: s}
	sh.services[spec.Name] = s
	sh.mu.Unlock()
	r.registered(spec.Name)
	return nil
}

// Retire removes a platform registration — live or cold — so subsequent
// Lookups miss with the bounded unknown-platform error. Requests already
// holding the *Service keep working (the service itself is not torn
// down); fleet consumers that enumerate tenants per round (the fleet
// scheduler) observe the miss and are expected to skip and record it
// rather than fail. Retiring an unknown name returns the same bounded
// miss error Lookup would.
func (r *Registry) Retire(name string) error {
	if name == "" {
		return errors.New("predict: retire needs a platform name")
	}
	sh := r.shardFor(name)
	sh.mu.Lock()
	if _, ok := sh.entries[name]; !ok {
		sh.mu.Unlock()
		return r.missError(fmt.Sprintf("predict: unknown platform %q", name), name)
	}
	delete(sh.entries, name)
	delete(sh.services, name)
	sh.mu.Unlock()
	// Re-derive the empty-name resolution bookkeeping. Names() nests shard
	// read locks under countMu; no path locks in the reverse order (every
	// shard-lock holder releases before touching countMu).
	r.countMu.Lock()
	r.count--
	r.soleName = ""
	if r.count == 1 {
		if names := r.Names(); len(names) == 1 {
			r.soleName = names[0]
		}
	}
	r.countMu.Unlock()
	return nil
}

// Lookup finds (or lazily instantiates) the service for a platform name.
// An empty name resolves only when exactly one platform is registered.
// Misses allocate a bounded error — a count plus the few nearest names —
// never the full tenant list.
func (r *Registry) Lookup(name string) (*Service, error) {
	if name == "" {
		r.countMu.Lock()
		count, sole := r.count, r.soleName
		r.countMu.Unlock()
		if count == 1 && sole != "" {
			return r.Lookup(sole)
		}
		return nil, r.missError("predict: no platform named", "")
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	svc := sh.services[name]
	e := sh.entries[name]
	sh.mu.RUnlock()
	if svc != nil {
		return svc, nil
	}
	if e == nil {
		return nil, r.missError(fmt.Sprintf("predict: unknown platform %q", name), name)
	}
	return e.instantiate(r, sh)
}

// instantiate builds the entry's service exactly once, memoizing the
// result (or the error) and publishing the live service on the shard's
// fast path.
func (e *platformEntry) instantiate(r *Registry, sh *registryShard) (*Service, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.built {
		return e.svc, e.err
	}
	svc, err := NewServiceFromSpec(e.spec, r.metrics)
	if err != nil {
		err = fmt.Errorf("predict: instantiating platform %q: %w", e.spec.Name, err)
	}
	e.svc, e.err, e.built = svc, err, true
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.services[e.spec.Name] = svc
	sh.mu.Unlock()
	return svc, nil
}

// missError builds the bounded lookup-failure error: prefix, registration
// count, and up to three nearest registered names (longest shared prefix
// first) — never the full fleet roster.
func (r *Registry) missError(prefix, miss string) error {
	count, nearest := r.nearestNames(miss, 3)
	if count == 0 {
		return fmt.Errorf("%s; no platforms registered", prefix)
	}
	return fmt.Errorf("%s; %d platform(s) registered (nearest: %s)", prefix, count, strings.Join(nearest, ", "))
}

// nearestNames returns the total registration count and the k registered
// names nearest to miss, ranked by longest shared prefix then
// lexicographically. O(fleet) time on the error path only; the happy path
// never calls it.
func (r *Registry) nearestNames(miss string, k int) (int, []string) {
	type cand struct {
		name   string
		shared int
	}
	var cands []cand
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name := range sh.entries {
			cands = append(cands, cand{name: name, shared: sharedPrefix(name, miss)})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].shared != cands[j].shared {
			return cands[i].shared > cands[j].shared
		}
		return cands[i].name < cands[j].name
	})
	n := len(cands)
	if k > n {
		k = n
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = cands[i].name
	}
	return n, names
}

func sharedPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Names returns every registered platform name (live or cold), sorted.
func (r *Registry) Names() []string {
	var names []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name := range sh.entries {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Services returns the live (instantiated) services in platform-name
// order; cold specs are not materialized.
func (r *Registry) Services() []*Service {
	var out []*Service
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, svc := range sh.services {
			out = append(out, svc)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// LiveCount returns how many platforms have been instantiated so far.
func (r *Registry) LiveCount() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.services)
		sh.mu.RUnlock()
	}
	return n
}

// Predict routes the request to the service named by req.Platform.
func (r *Registry) Predict(req Request) (Prediction, error) {
	s, err := r.Lookup(req.Platform)
	if err != nil {
		return Prediction{}, err
	}
	return s.Predict(req)
}

// PredictBatch routes many requests in one call: requests are grouped by
// platform (preserving first-appearance order) and each group is resolved
// with a single shared-clock visit to its service, so a batch touching one
// platform's monitors pays the shard/cache walk once per distinct request
// shape. Results and errors are positional, parallel to reqs; a request for
// an unknown platform gets the lookup error at its index without failing
// the rest.
func (r *Registry) PredictBatch(reqs []Request) ([]Prediction, []error) {
	preds := make([]Prediction, len(reqs))
	errs := make([]error, len(reqs))
	byPlat := make(map[string][]int)
	var order []string
	for i, req := range reqs {
		if _, ok := byPlat[req.Platform]; !ok {
			order = append(order, req.Platform)
		}
		byPlat[req.Platform] = append(byPlat[req.Platform], i)
	}
	for _, name := range order {
		idxs := byPlat[name]
		svc, err := r.Lookup(name)
		if err != nil {
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		sub := make([]Request, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		subPreds, subErrs := svc.PredictBatch(sub)
		for j, i := range idxs {
			preds[i], errs[i] = subPreds[j], subErrs[j]
		}
	}
	return preds, errs
}

// Observe routes a measured runtime (virtual seconds) to the service that
// issued the prediction, closing the accuracy loop for that platform.
func (r *Registry) Observe(platform string, id uint64, actual float64) (calib.Snapshot, error) {
	s, err := r.Lookup(platform)
	if err != nil {
		return calib.Snapshot{}, err
	}
	return s.Observe(id, actual)
}
