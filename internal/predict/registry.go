package predict

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"prodpred/internal/calib"
)

// Registry routes requests to the Service owning the named platform — the
// multi-platform front a serving daemon puts before several Services.
// Safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Service)}
}

// Register adds a service under its platform name.
func (r *Registry) Register(s *Service) error {
	if s == nil {
		return errors.New("predict: nil service")
	}
	if s.Name() == "" {
		return errors.New("predict: service platform has no name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[s.Name()]; ok {
		return fmt.Errorf("predict: platform %q already registered", s.Name())
	}
	r.m[s.Name()] = s
	return nil
}

// Lookup finds the service for a platform name. An empty name resolves only
// when exactly one service is registered.
func (r *Registry) Lookup(name string) (*Service, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.m) == 1 {
			for _, s := range r.m {
				return s, nil
			}
		}
		return nil, fmt.Errorf("predict: no platform named; registered: %v", r.namesLocked())
	}
	s, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("predict: unknown platform %q; registered: %v", name, r.namesLocked())
	}
	return s, nil
}

// Names returns the registered platform names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Services returns the registered services in platform-name order.
func (r *Registry) Services() []*Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Service, 0, len(r.m))
	for _, name := range r.namesLocked() {
		out = append(out, r.m[name])
	}
	return out
}

// Predict routes the request to the service named by req.Platform.
func (r *Registry) Predict(req Request) (Prediction, error) {
	s, err := r.Lookup(req.Platform)
	if err != nil {
		return Prediction{}, err
	}
	return s.Predict(req)
}

// PredictBatch routes many requests in one call: requests are grouped by
// platform (preserving first-appearance order) and each group is resolved
// with a single shared-clock visit to its service, so a batch touching one
// platform's monitors pays the shard/cache walk once per distinct request
// shape. Results and errors are positional, parallel to reqs; a request for
// an unknown platform gets the lookup error at its index without failing
// the rest.
func (r *Registry) PredictBatch(reqs []Request) ([]Prediction, []error) {
	preds := make([]Prediction, len(reqs))
	errs := make([]error, len(reqs))
	byPlat := make(map[string][]int)
	var order []string
	for i, req := range reqs {
		if _, ok := byPlat[req.Platform]; !ok {
			order = append(order, req.Platform)
		}
		byPlat[req.Platform] = append(byPlat[req.Platform], i)
	}
	for _, name := range order {
		idxs := byPlat[name]
		svc, err := r.Lookup(name)
		if err != nil {
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		sub := make([]Request, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		subPreds, subErrs := svc.PredictBatch(sub)
		for j, i := range idxs {
			preds[i], errs[i] = subPreds[j], subErrs[j]
		}
	}
	return preds, errs
}

// Observe routes a measured runtime (virtual seconds) to the service that
// issued the prediction, closing the accuracy loop for that platform.
func (r *Registry) Observe(platform string, id uint64, actual float64) (calib.Snapshot, error) {
	s, err := r.Lookup(platform)
	if err != nil {
		return calib.Snapshot{}, err
	}
	return s.Observe(id, actual)
}
